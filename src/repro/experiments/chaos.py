"""Chaos experiment: false alarms vs channel burstiness, with and
without k-of-r alarm-confirmation voting.

The question this answers is the one the paper's i.i.d. loss model
cannot: *what does correlated reply loss do to a monitoring
deployment's false-alarm rate, and how much of it does voting claw
back?* The sweep holds the marginal loss rate fixed and varies only
the Gilbert–Elliott mean burst length, so every column loses the same
number of replies on average — the x-axis is pure correlation.

Per burst length the experiment Monte-Carlos two populations:

* **intact** — all ``n`` tags present; any page is a false alarm.
  Rounds alarm under the tolerant threshold rule (estimated missing
  ``> m``), the realistic deployment policy for lossy channels.
* **theft** — ``theft_size`` tags removed throughout; a page is a
  detection.

Each condition reports the raw per-round rate and the k-of-r voted
rate, the latter both empirically (non-overlapping r-round windows,
quorum k) and analytically (the Binomial tail of the measured
per-round rate via
:func:`repro.core.verification.vote_false_alarm_probability` — rounds
use independent seeds and channel states, so the tail is exact, not a
heuristic). The i.i.d. reference column comes from
:func:`repro.core.verification.channel_false_alarm_probability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core.analysis import optimal_trp_frame_size
from ..core.estimation import estimate_missing_count
from ..core.verification import (
    channel_false_alarm_probability,
    vote_detection_probability,
    vote_false_alarm_probability,
)
from ..faults.models import GilbertElliott
from ..rfid.hashing import slots_for_tags
from ..rfid.ids import random_tag_ids
from ..simulation.rng import derive_seed

__all__ = [
    "ChaosConfig",
    "ChaosPoint",
    "ChaosResult",
    "run_chaos",
    "format_chaos_result",
]

_SEED_SPACE = 1 << 62
#: Seed-space dimension for this experiment (figures use their figure
#: numbers, the fleet uses 99, faults use 7).
_CHAOS_DIMENSION = 41


@dataclass(frozen=True)
class ChaosConfig:
    """The sweep's operating point.

    Attributes:
        population: registered ``n``.
        tolerance: the deployment's ``m`` (threshold alarm rule).
        confidence: Eq. 2 planning confidence ``alpha`` (sizes ``f``
            and is the floor voted detection must stay above).
        marginal_loss: per-reply loss rate held fixed across the sweep.
        burst_lengths: Gilbert–Elliott mean burst lengths to sweep
            (1 = i.i.d. loss).
        vote_quorum: ``k`` of the confirmation vote.
        vote_window: ``r`` of the confirmation vote.
        theft_size: tags stolen in the detection condition.
        trials: simulated rounds per (burst length, condition).
        master_seed: root of every generator this experiment touches.
    """

    population: int = 1000
    tolerance: int = 10
    confidence: float = 0.95
    marginal_loss: float = 0.002
    burst_lengths: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    vote_quorum: int = 3
    vote_window: int = 4
    theft_size: int = 25
    trials: int = 2000
    master_seed: int = 20080617

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be >= 1")
        if not 0 <= self.tolerance < self.population:
            raise ValueError("tolerance must be within [0, n)")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be within (0, 1)")
        if not 0.0 < self.marginal_loss < 1.0:
            raise ValueError("marginal_loss must be within (0, 1)")
        if not 1 <= self.vote_quorum <= self.vote_window:
            raise ValueError("need 1 <= vote_quorum <= vote_window")
        if not 0 < self.theft_size <= self.population:
            raise ValueError("theft_size must be within (0, n]")
        if self.trials < self.vote_window:
            raise ValueError("trials must cover at least one vote window")


@dataclass
class ChaosPoint:
    """One burst length's measured rates."""

    burst_length: float
    per_round_fa: float
    voted_fa: float
    voted_fa_binomial: float
    per_round_detection: float
    voted_detection: float

    @property
    def suppression(self) -> float:
        """How many times the vote cuts the false-alarm rate."""
        if self.voted_fa > 0:
            return self.per_round_fa / self.voted_fa
        if self.voted_fa_binomial > 0:
            return self.per_round_fa / self.voted_fa_binomial
        return float("inf") if self.per_round_fa > 0 else 1.0


@dataclass
class ChaosResult:
    """The full sweep plus its derived context."""

    config: ChaosConfig
    frame_size: int
    iid_reference_fa: float
    points: List[ChaosPoint] = field(default_factory=list)


def _alarm_rates(
    ids: np.ndarray,
    present: np.ndarray,
    frame_size: int,
    tolerance: int,
    model: GilbertElliott,
    trials: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Boolean per-trial alarm outcomes for one (population, channel)."""
    n = ids.size
    alarms = np.empty(trials, dtype=bool)
    for trial in range(trials):
        seed = int(rng.integers(0, _SEED_SPACE))
        slots = slots_for_tags(ids, seed, frame_size)
        expected = np.zeros(frame_size, dtype=bool)
        expected[slots] = True
        mask = model.loss_mask(frame_size, rng)
        present_slots = slots[present]
        heard = present_slots[~mask[present_slots]]
        observed = np.zeros(frame_size, dtype=bool)
        observed[heard] = True
        mismatches = int(np.count_nonzero(expected & ~observed))
        alarms[trial] = (
            estimate_missing_count(mismatches, n, frame_size) > tolerance
        )
    return alarms


def _windowed_rate(alarms: np.ndarray, quorum: int, window: int) -> float:
    """Fraction of non-overlapping r-round windows meeting the quorum."""
    usable = (alarms.size // window) * window
    blocks = alarms[:usable].reshape(-1, window)
    return float((blocks.sum(axis=1) >= quorum).mean())


def run_chaos(config: ChaosConfig = ChaosConfig()) -> ChaosResult:
    """Run the burstiness sweep.

    Raises:
        ValueError: when a burst length is infeasible for the marginal
            rate (propagated from the Gilbert–Elliott construction).
    """
    cfg = config
    frame_size = optimal_trp_frame_size(
        cfg.population, cfg.tolerance, cfg.confidence
    )
    roster_rng = np.random.default_rng(
        derive_seed(cfg.master_seed, _CHAOS_DIMENSION, 0)
    )
    ids = random_tag_ids(cfg.population, roster_rng)
    intact = np.ones(cfg.population, dtype=bool)
    theft = intact.copy()
    stolen = roster_rng.choice(
        cfg.population, size=cfg.theft_size, replace=False
    )
    theft[stolen] = False

    result = ChaosResult(
        config=cfg,
        frame_size=frame_size,
        iid_reference_fa=channel_false_alarm_probability(
            cfg.population, frame_size, cfg.marginal_loss
        ),
    )
    for index, burst in enumerate(cfg.burst_lengths):
        model = GilbertElliott.from_burst(cfg.marginal_loss, burst)
        fa_rng = np.random.default_rng(
            derive_seed(cfg.master_seed, _CHAOS_DIMENSION, 1, index)
        )
        det_rng = np.random.default_rng(
            derive_seed(cfg.master_seed, _CHAOS_DIMENSION, 2, index)
        )
        fa_alarms = _alarm_rates(
            ids, intact, frame_size, cfg.tolerance, model, cfg.trials, fa_rng
        )
        det_alarms = _alarm_rates(
            ids, theft, frame_size, cfg.tolerance, model, cfg.trials, det_rng
        )
        per_round_fa = float(fa_alarms.mean())
        per_round_det = float(det_alarms.mean())
        result.points.append(
            ChaosPoint(
                burst_length=burst,
                per_round_fa=per_round_fa,
                voted_fa=_windowed_rate(
                    fa_alarms, cfg.vote_quorum, cfg.vote_window
                ),
                voted_fa_binomial=vote_false_alarm_probability(
                    per_round_fa, cfg.vote_quorum, cfg.vote_window
                ),
                per_round_detection=per_round_det,
                voted_detection=vote_detection_probability(
                    per_round_det, cfg.vote_quorum, cfg.vote_window
                ),
            )
        )
    return result


def format_chaos_result(result: ChaosResult) -> str:
    """The operator-facing sweep table."""
    cfg = result.config
    lines = [
        "chaos: false-alarm rate vs channel burstiness "
        f"(n={cfg.population}, m={cfg.tolerance}, alpha={cfg.confidence}, "
        f"f={result.frame_size})",
        f"marginal loss {cfg.marginal_loss:.3%} held fixed; "
        f"vote = {cfg.vote_quorum}-of-{cfg.vote_window}; "
        f"theft condition removes {cfg.theft_size} tags; "
        f"{cfg.trials} rounds per cell",
        f"i.i.d. analytic reference FA (strict rule): "
        f"{result.iid_reference_fa:.4f}",
        "",
        "burst  FA/round  FA voted  FA binom   cut    det/round  det voted",
        "-----  --------  --------  --------  ------  ---------  ---------",
    ]
    for p in result.points:
        cut = (
            f"{p.suppression:6.1f}x"
            if np.isfinite(p.suppression)
            else "   inf "
        )
        lines.append(
            f"{p.burst_length:5.0f}  {p.per_round_fa:8.4f}  "
            f"{p.voted_fa:8.4f}  {p.voted_fa_binomial:8.4f}  {cut}  "
            f"{p.per_round_detection:9.4f}  {p.voted_detection:9.4f}"
        )
    worst = max(result.points, key=lambda p: p.per_round_fa)
    lines.append("")
    lines.append(
        f"worst point (burst {worst.burst_length:.0f}): per-round FA "
        f"{worst.per_round_fa:.4f} -> voted {max(worst.voted_fa, worst.voted_fa_binomial):.4f} "
        f"({worst.suppression:.0f}x reduction); voted detection "
        f"{worst.voted_detection:.4f} vs alpha {cfg.confidence}"
    )
    return "\n".join(lines)
