"""Fig. 7 — UTRP detection accuracy against optimal collusion.

For every ``(n, m)`` cell the server sizes the frame with Eq. 3 (plus
slack), the adversary splits the set (stealing ``m + 1`` random tags),
plays the Sec. 5.4 optimal strategy with a budget of ``c = 20``
synchronisations, and we measure how often the forged bitstring
differs from the server's cascade replay. The paper's claim: every bar
clears ``alpha = 0.95``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.utrp_analysis import optimal_utrp_frame_size
from ..simulation.batched import utrp_collusion_detection_trials_batched
from ..simulation.metrics import ProportionSummary, summarize_detections
from ..simulation.rng import derive_seed
from .grid import ExperimentGrid
from .report import render_series, render_table

__all__ = ["Fig7Row", "Fig7Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig7Row:
    """One bar of Fig. 7.

    Attributes:
        population: ``n``.
        tolerance: ``m`` (the adversary steals ``m + 1``).
        frame_size: Eq. 3 + slack frame the run used.
        detection: measured detection-rate summary.
    """

    population: int
    tolerance: int
    frame_size: int
    detection: ProportionSummary

    def clears(self, alpha: float) -> bool:
        return self.detection.exceeds(alpha)


@dataclass
class Fig7Result:
    grid: ExperimentGrid
    rows: List[Fig7Row]

    def panel(self, tolerance: int) -> List[Fig7Row]:
        return [r for r in self.rows if r.tolerance == tolerance]

    def cells_clearing_alpha(self) -> int:
        return sum(1 for r in self.rows if r.clears(self.grid.alpha))


def _cell(grid: ExperimentGrid, n: int, m: int) -> Fig7Row:
    """One (n, m) cell, seeded independently so cells parallelise."""
    f = optimal_utrp_frame_size(n, m, grid.alpha, grid.comm_budget)
    detections = utrp_collusion_detection_trials_batched(
        n,
        m + 1,
        f,
        grid.comm_budget,
        grid.trials,
        derive_seed(grid.master_seed, 7, n, m),
        batch_size=grid.batch_size,
    )
    return Fig7Row(
        population=n,
        tolerance=m,
        frame_size=f,
        detection=summarize_detections(detections),
    )


def run(grid: ExperimentGrid, jobs: int = 1) -> Fig7Result:
    """Regenerate Fig. 7's data over ``grid``, ``jobs`` cells at a time."""
    from ..fleet.executor import ParallelExecutor

    rows = ParallelExecutor(jobs).map(
        lambda cell: _cell(grid, *cell), grid.cells
    )
    return Fig7Result(grid=grid, rows=rows)


def format_result(result: Fig7Result) -> str:
    alpha = result.grid.alpha
    blocks = []
    for m in result.grid.tolerances:
        panel = result.panel(m)
        blocks.append(
            render_series(
                [r.population for r in panel],
                [r.detection.rate for r in panel],
                lo=0.90,
                hi=1.00,
                title=(
                    f"Fig. 7 panel: tolerate m={m}, c={result.grid.comm_budget} "
                    f"(alpha={alpha}, {result.grid.trials} trials)"
                ),
            )
        )
    summary_rows = [
        (r.population, r.tolerance, r.frame_size, r.detection.rate,
         f"[{r.detection.ci_low:.3f}, {r.detection.ci_high:.3f}]",
         "yes" if r.clears(alpha) else "NO")
        for r in result.rows
    ]
    blocks.append(
        render_table(
            ["n", "m", "f", "detect rate", "95% CI", f"> {alpha}?"],
            summary_rows,
            title="Fig. 7 summary",
        )
    )
    return "\n\n".join(blocks)
