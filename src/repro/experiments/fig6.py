"""Fig. 6 — TRP versus UTRP frame sizes (``c = 20``).

Both frame sizes are analytic (Eq. 2 vs Eq. 3 + slack), so this figure
involves no Monte Carlo. The paper's claim: UTRP's defence against
colluding readers costs only a small slot overhead over TRP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.analysis import optimal_trp_frame_size
from ..core.utrp_analysis import optimal_utrp_frame_size
from .grid import ExperimentGrid
from .report import render_table

__all__ = ["Fig6Row", "Fig6Result", "run", "format_result"]


@dataclass(frozen=True)
class Fig6Row:
    """One grid cell of Fig. 6.

    Attributes:
        population: ``n``.
        tolerance: ``m``.
        trp_slots: Eq. 2 frame size.
        utrp_slots: Eq. 3 frame size plus the paper's slack slots.
    """

    population: int
    tolerance: int
    trp_slots: int
    utrp_slots: int

    @property
    def overhead_slots(self) -> int:
        return self.utrp_slots - self.trp_slots

    @property
    def overhead_fraction(self) -> float:
        return self.overhead_slots / self.trp_slots


@dataclass
class Fig6Result:
    grid: ExperimentGrid
    rows: List[Fig6Row]

    def panel(self, tolerance: int) -> List[Fig6Row]:
        return [r for r in self.rows if r.tolerance == tolerance]

    @property
    def max_overhead_fraction(self) -> float:
        return max(r.overhead_fraction for r in self.rows)


def _cell(grid: ExperimentGrid, n: int, m: int) -> Fig6Row:
    """One (n, m) cell (purely analytic; no randomness)."""
    return Fig6Row(
        population=n,
        tolerance=m,
        trp_slots=optimal_trp_frame_size(n, m, grid.alpha),
        utrp_slots=optimal_utrp_frame_size(n, m, grid.alpha, grid.comm_budget),
    )


def run(grid: ExperimentGrid, jobs: int = 1) -> Fig6Result:
    """Regenerate Fig. 6's data over ``grid``, ``jobs`` cells at a time."""
    from ..fleet.executor import ParallelExecutor

    rows = ParallelExecutor(jobs).map(
        lambda cell: _cell(grid, *cell), grid.cells
    )
    return Fig6Result(grid=grid, rows=rows)


def format_result(result: Fig6Result) -> str:
    blocks = []
    for m in result.grid.tolerances:
        rows = [
            (r.population, r.trp_slots, r.utrp_slots, r.overhead_slots,
             f"{100 * r.overhead_fraction:.1f}%")
            for r in result.panel(m)
        ]
        blocks.append(
            render_table(
                ["n", "TRP slots", "UTRP slots", "overhead", "overhead %"],
                rows,
                title=(
                    f"Fig. 6 panel: tolerate m={m}, c={result.grid.comm_budget} "
                    f"(alpha={result.grid.alpha})"
                ),
            )
        )
    return "\n\n".join(blocks)
