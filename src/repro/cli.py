"""Command-line entry point: regenerate any figure or ablation offline.

Usage::

    python -m repro fig4            # collect-all vs TRP slots
    python -m repro fig5            # TRP accuracy
    python -m repro fig6            # TRP vs UTRP frame sizes
    python -m repro fig7            # UTRP accuracy under collusion
    python -m repro ablations       # all five ablations
    python -m repro plan -n 1000 -m 10 --alpha 0.95   # frame planning
    python -m repro fleet --groups 8 --rounds 5 --jobs 4   # fleet campaign
    python -m repro chaos           # fault-injection campaign, defences on
    python -m repro chaos --sweep   # false-alarm rate vs burstiness
    python -m repro bench --quick   # obs perf record -> BENCH_obs.json
    python -m repro serve --port 7780 --groups 4        # monitoring service
    python -m repro loadgen --groups 8 --rounds 3       # load it, BENCH_serve.json
    python -m repro shard --workers 4 --groups 16       # sharded gateway
    python -m repro shard --drill                       # kill-a-worker drill
    python -m repro shard --drill --trace-out trace.jsonl   # + merged trace
    python -m repro shard --chaos                       # self-healing chaos drill
    python -m repro shard --bench                       # scaling, BENCH_shard.json
    python -m repro obs tail trace.jsonl                # causal trace tree
    python -m repro obs report trace.jsonl --metrics m.txt  # SLO attainment
    python -m repro churn           # detection vs membership churn sweep
    python -m repro churn --smoke   # scripted-churn fleet campaign (CI gate)

Add ``--full`` (or set ``REPRO_FULL=1``) for the paper's exact grid,
``--trials K`` to override the Monte Carlo sample size, and ``--jobs N``
on the figure commands to run grid cells concurrently. The figure and
fleet commands take ``--trace-out`` / ``--metrics-out`` to export obs
events (deterministic JSONL) and metrics (Prometheus text).
``--batch-size B`` bounds the batched kernels' chunk memory (results
are identical for any B); ``--plan-cache PATH`` persists Eq. 2/Eq. 3
frame plans to a JSON file so warm reruns skip the solvers.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import List, Optional

from .core.analysis import detection_probability, optimal_trp_frame_size
from .core.utrp_analysis import optimal_utrp_frame_size, utrp_detection_probability
from .experiments import ablations, fig4, fig5, fig6, fig7
from .experiments.grid import ExperimentGrid, grid_from_env, paper_grid

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rfid",
        description=(
            "Reproduction harness for 'How to Monitor for Missing RFID "
            "Tags' (ICDCS 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in [
        ("fig4", "collect-all vs TRP slot counts"),
        ("fig5", "TRP detection accuracy (worst-case theft)"),
        ("fig6", "TRP vs UTRP frame sizes"),
        ("fig7", "UTRP detection accuracy under collusion"),
        ("ablations", "run the ablation studies"),
    ]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--full", action="store_true", help="use the paper's exact grid")
        p.add_argument("--trials", type=int, default=None, help="override trial count")
        p.add_argument("--seed", type=int, default=None, help="override master seed")
        p.add_argument(
            "--batch-size", type=int, default=None, metavar="B",
            help="trials per chunk in the batched Monte Carlo kernels "
            "(memory knob; results are identical for any B)",
        )
        p.add_argument(
            "--plan-cache", default=None, metavar="PATH",
            help="persist Eq. 2/Eq. 3 frame plans to this JSON file "
            "(warm runs skip the solvers)",
        )
        if name.startswith("fig"):
            p.add_argument(
                "--csv", default=None, metavar="PATH",
                help="also write the figure's rows as CSV",
            )
            p.add_argument(
                "--jobs", type=int, default=1, metavar="N",
                help="run grid cells on N threads; 0 = all cores "
                "(results are independent of N)",
            )
            p.add_argument(
                "--trace-out", default=None, metavar="PATH",
                help="write the sweep's obs events as JSONL "
                "(deterministic under --seed)",
            )
            p.add_argument(
                "--metrics-out", default=None, metavar="PATH",
                help="write an obs metrics snapshot "
                "(Prometheus text format)",
            )

    plan = sub.add_parser("plan", help="frame-size planning for a deployment")
    plan.add_argument("-n", "--population", type=int, required=True)
    plan.add_argument("-m", "--tolerance", type=int, required=True)
    plan.add_argument("--alpha", type=float, default=0.95)
    plan.add_argument("-c", "--comm-budget", type=int, default=20)
    plan.add_argument(
        "--rounds", type=int, default=1,
        help="show multi-round plans up to this many rounds",
    )
    plan.add_argument(
        "--identify-beta", type=float, default=None, metavar="BETA",
        help="also plan forensic rounds to name all missing tags w.p. BETA",
    )
    plan.add_argument(
        "--plan-cache", default=None, metavar="PATH",
        help="persist the computed frame plans to this JSON file",
    )

    fleet = sub.add_parser(
        "fleet",
        help="run a multi-group monitoring campaign",
        description=(
            "Simulate a fleet of monitored tag groups: per-group TRP/UTRP "
            "rounds with retries over lossy channels, escalation to "
            "identification on repeated alarms, and a deterministic "
            "journal (same seed => same digest, whatever --jobs is)."
        ),
    )
    fleet.add_argument(
        "--groups", type=int, default=4, metavar="G",
        help="number of groups in the built-in scenario (default 4)",
    )
    fleet.add_argument(
        "--rounds", type=int, default=5, metavar="T",
        help="scheduler ticks to run (default 5)",
    )
    fleet.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent rounds; 0 = all cores (default 1 = serial)",
    )
    fleet.add_argument("--seed", type=int, default=None, help="master seed")
    fleet.add_argument(
        "--scenario", default=None, metavar="PATH",
        help="load the roster + theft timeline from a scenario JSON file",
    )
    fleet.add_argument(
        "--journal", default=None, metavar="PATH",
        help="also write the round journal as JSON lines",
    )
    fleet.add_argument(
        "--time-scale", type=float, default=8.0, metavar="K",
        help="simulate reader air time at K x real speed "
        "(0 = no pacing; default 8)",
    )
    fleet.add_argument(
        "--diag-trials", type=int, default=0, metavar="K",
        help="per-round empirical-detection diagnostic trials (default 0)",
    )
    fleet.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the campaign's obs events as JSONL (digest is "
        "identical across --jobs under a fixed seed)",
    )
    fleet.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the campaign's metrics as a Prometheus text snapshot",
    )
    fleet.add_argument(
        "--plan-cache", default=None, metavar="PATH",
        help="persist Eq. 2/Eq. 3 frame plans to this JSON file "
        "(a warm fleet skips frame sizing entirely)",
    )
    fleet.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="inject faults from this fault-plan JSON file "
        "(see repro.faults; same seed => same injections, whatever --jobs)",
    )
    fleet.add_argument(
        "--churn-plan", default=None, metavar="PATH",
        help="apply scripted membership churn from this churn-plan JSON "
        "file (repro.population: commission/decommission/replace events "
        "by tick; an empty plan leaves the journal digest unchanged)",
    )
    fleet.add_argument(
        "--vote", nargs=2, type=int, default=None, metavar=("K", "R"),
        help="page only when K of the last R rounds alarm "
        "(k-of-r confirmation; default: page on every alarm)",
    )
    fleet.add_argument(
        "--salvage", action="store_true",
        help="verify crash-truncated frames at their achieved "
        "confidence instead of rejecting them",
    )
    fleet.add_argument(
        "--resync", action="store_true",
        help="run the bounded counter-resync handshake after "
        "counter-tag alarms (withdraws desync-only alarms)",
    )
    fleet.add_argument(
        "--connect-host", default=None, metavar="HOST",
        help="drive a remote serve/shard endpoint instead of the "
        "in-process simulation (repro.fleet.remote)",
    )
    fleet.add_argument(
        "--connect-port", type=int, default=7780, metavar="P",
        help="port of the remote endpoint (with --connect-host)",
    )
    fleet.add_argument(
        "--protocol", choices=("trp", "utrp"), default="trp",
        help="round protocol for remote campaigns (default trp)",
    )
    fleet.add_argument(
        "--population", type=int, default=100, metavar="N",
        help="tags per remote group (default 100)",
    )
    fleet.add_argument(
        "--tolerance", type=int, default=2, metavar="M",
        help="missing-tag tolerance per remote group (default 2)",
    )
    fleet.add_argument(
        "--alpha", type=float, default=0.9,
        help="detection confidence for remote groups",
    )
    fleet.add_argument(
        "--counter-tags", action="store_true",
        help="field counter-mode populations in remote campaigns "
        "(default: only for utrp)",
    )
    fleet.add_argument(
        "--wire-version", choices=("v1", "v2"), default="v1",
        help="remote campaigns: framing to offer at connection open "
        "(v2 negotiates the binary framing, falling back to v1; "
        "default v1)",
    )
    fleet.add_argument(
        "--pipeline-depth", type=int, default=1, metavar="D",
        help="remote campaigns: overlapped rounds per session "
        "(> 1 requires --wire-version v2; default 1)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection campaign with graceful degradation on",
        description=(
            "Run a fleet campaign under a declarative fault plan with "
            "every degradation defence enabled by default: k-of-r alarm "
            "confirmation, partial-frame salvage and counter resync. "
            "With --sweep, run the burstiness experiment instead "
            "(false-alarm rate vs Gilbert-Elliott burst length, with "
            "and without voting)."
        ),
    )
    chaos.add_argument(
        "--groups", type=int, default=4, metavar="G",
        help="groups in the built-in scenario (default 4)",
    )
    chaos.add_argument(
        "--rounds", type=int, default=8, metavar="T",
        help="scheduler ticks to run (default 8)",
    )
    chaos.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="concurrent rounds; 0 = all cores (default 1)",
    )
    chaos.add_argument("--seed", type=int, default=None, help="master seed")
    chaos.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="fault plan JSON (default: the bundled example plan)",
    )
    chaos.add_argument(
        "--vote", nargs=2, type=int, default=(2, 3), metavar=("K", "R"),
        help="k-of-r confirmation vote (default 2 of 3)",
    )
    chaos.add_argument(
        "--no-vote", action="store_true",
        help="page on every raw alarm (disable the confirmation vote)",
    )
    chaos.add_argument(
        "--no-salvage", action="store_true",
        help="reject crash-truncated frames instead of salvaging them",
    )
    chaos.add_argument(
        "--no-resync", action="store_true",
        help="skip the counter-resync handshake after alarms",
    )
    chaos.add_argument(
        "--verdicts-out", default=None, metavar="PATH",
        help="write the per-round verdict sequence (one line per "
        "round; byte-stable under a fixed seed — the CI chaos gate)",
    )
    chaos.add_argument(
        "--journal", default=None, metavar="PATH",
        help="also write the round journal as JSON lines",
    )
    chaos.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the campaign's obs events as JSONL",
    )
    chaos.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the campaign's metrics as a Prometheus snapshot",
    )
    chaos.add_argument(
        "--sweep", action="store_true",
        help="run the burstiness false-alarm sweep instead of a campaign",
    )
    chaos.add_argument(
        "--trials", type=int, default=None, metavar="K",
        help="rounds per sweep cell (sweep mode only; default 2000)",
    )

    bench = sub.add_parser(
        "bench",
        help="time the hot paths; write a BENCH_obs.json perf record",
        description=(
            "Profile the fastpath Monte Carlo kernels and a fleet "
            "campaign's round execution, then write a schema-valid "
            "perf record (repro.obs.bench/v1) for the bench trajectory."
        ),
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="smoke-test sizes (the CI gate)",
    )
    bench.add_argument(
        "--out", default="BENCH_obs.json", metavar="PATH",
        help="where to write the perf record (default BENCH_obs.json)",
    )
    bench.add_argument("--seed", type=int, default=None, help="master seed")

    serve = sub.add_parser(
        "serve",
        help="host the monitoring service for remote readers",
        description=(
            "Start the asyncio monitoring service (repro.serve/v1): one "
            "MonitoringServer per group behind a single listener, timer "
            "enforcement, backpressure, per-session degradation. Groups "
            "are seeded deterministically so clients can rebuild the "
            "matching populations from the same --seed."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7780, metavar="P",
        help="listen port (0 = ephemeral; default 7780)",
    )
    serve.add_argument(
        "--groups", type=int, default=4, metavar="G",
        help="tag groups to host, named group-000.. (default 4)",
    )
    serve.add_argument(
        "--population", type=int, default=100, metavar="N",
        help="tags per group (default 100)",
    )
    serve.add_argument(
        "--tolerance", type=int, default=2, metavar="M",
        help="missing-tag tolerance per group (default 2)",
    )
    serve.add_argument(
        "--alpha", type=float, default=0.9, help="detection confidence"
    )
    serve.add_argument("--seed", type=int, default=None, help="master seed")
    serve.add_argument(
        "--rounds-limit", type=int, default=None, metavar="K",
        help="exit after K verdicts service-wide (default: run until "
        "interrupted; the CI smoke step uses this)",
    )
    serve.add_argument(
        "--timer-scale", type=float, default=0.0, metavar="US_PER_S",
        help="enforce the UTRP timer as a wall-clock deadline at this "
        "many simulated us per wall second (0 = trust reported air "
        "time; default 0)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive reader sessions at the service; write BENCH_serve.json",
        description=(
            "Open-loop load generation: sessions of scripted reader "
            "rounds against a monitoring service (self-hosted on "
            "loopback unless --connect-host is given), reporting "
            "throughput, latency percentiles and error counts as a "
            "repro.obs.bench/v1 perf record."
        ),
    )
    loadgen.add_argument(
        "--connect-host", default=None, metavar="HOST",
        help="aim at an already-running service (default: self-host)",
    )
    loadgen.add_argument(
        "--connect-port", type=int, default=7780, metavar="P",
        help="port of the running service (with --connect-host)",
    )
    loadgen.add_argument(
        "--endpoint", action="append", default=None, metavar="HOST:PORT",
        help="aim at several running services, round-robining sessions "
        "across them (repeatable; overrides --connect-host)",
    )
    loadgen.add_argument(
        "--reader", choices=("honest", "null"), default="honest",
        help="reader model: 'honest' scans the real population, 'null' "
        "answers instantly (server-side benchmarking; default honest)",
    )
    loadgen.add_argument(
        "--groups", type=int, default=8, metavar="G",
        help="groups to load (default 8)",
    )
    loadgen.add_argument(
        "--rounds", type=int, default=3, metavar="T",
        help="rounds per session (default 3)",
    )
    loadgen.add_argument(
        "--sessions", type=int, default=None, metavar="S",
        help="total sessions (default: one per group)",
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=8, metavar="C",
        help="sessions in flight at once (default 8)",
    )
    loadgen.add_argument(
        "--arrival-rate", type=float, default=0.0, metavar="RPS",
        help="session arrivals per second (0 = all at once)",
    )
    loadgen.add_argument(
        "--population", type=int, default=100, metavar="N",
        help="tags per group (default 100)",
    )
    loadgen.add_argument(
        "--tolerance", type=int, default=2, metavar="M",
        help="missing-tag tolerance per group (default 2)",
    )
    loadgen.add_argument(
        "--alpha", type=float, default=0.9, help="detection confidence"
    )
    loadgen.add_argument(
        "--protocol", choices=("trp", "utrp"), default="trp",
        help="round protocol (utrp pins one session per group)",
    )
    loadgen.add_argument("--seed", type=int, default=None, help="master seed")
    loadgen.add_argument(
        "--group-prefix", default=None, metavar="PFX",
        help="group naming: PFX-000.. (default: 'group' when connecting "
        "to a running service, 'load' when self-hosting)",
    )
    loadgen.add_argument(
        "--out", default="BENCH_serve.json", metavar="PATH",
        help="where to write the perf record (default BENCH_serve.json)",
    )
    loadgen.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="trace every round (reader.round root spans, contexts "
        "propagated on the wire) and write the span JSONL here",
    )
    loadgen.add_argument(
        "--wire-version", choices=("v1", "v2"), default="v1",
        help="framing each session offers at connection open (v2 "
        "negotiates the binary framing, falling back to v1 against "
        "old servers; default v1)",
    )
    loadgen.add_argument(
        "--pipeline-depth", type=int, default=1, metavar="D",
        help="overlapped rounds per session (> 1 requires "
        "--wire-version v2; default 1)",
    )
    loadgen.add_argument(
        "--churn-rate", type=float, default=0.0, metavar="R",
        help="membership replace updates per round per session "
        "(MEMBERSHIP frames on the wire, channel mutated in lockstep; "
        "requires the honest reader and one session per group at most; "
        "default 0 = static populations)",
    )

    churn = sub.add_parser(
        "churn",
        help="monitoring quality under membership churn (repro.population)",
        description=(
            "Sweep detection confidence and false-alarm rate against "
            "membership churn rate for commission/decommission/replace "
            "mixes, comparing an epoch-maintained membership view with "
            "one frozen at epoch 0. With --smoke, run a fleet campaign "
            "under a scripted churn plan instead and print its "
            "deterministic journal digest (the CI churn gate)."
        ),
    )
    churn.add_argument(
        "--rounds", type=int, default=None, metavar="T",
        help="rounds per sweep cell (default 200), or scheduler ticks "
        "in --smoke mode (default 6)",
    )
    churn.add_argument(
        "--population", type=int, default=None, metavar="N",
        help="initial population per cell (sweep mode; default 1200)",
    )
    churn.add_argument(
        "--tolerance", type=int, default=None, metavar="M",
        help="missing-tag tolerance (sweep mode; default 4)",
    )
    churn.add_argument(
        "--alpha", type=float, default=None,
        help="planning confidence (sweep mode; default 0.95)",
    )
    churn.add_argument("--seed", type=int, default=None, help="master seed")
    churn.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the report to this file",
    )
    churn.add_argument(
        "--smoke", action="store_true",
        help="run the scripted-churn fleet campaign (>=1 commission, "
        "decommission and replace mid-campaign) instead of the sweep",
    )
    churn.add_argument(
        "--groups", type=int, default=4, metavar="G",
        help="groups in the --smoke campaign scenario (default 4)",
    )

    shard = sub.add_parser(
        "shard",
        help="multi-process sharded serving: gateway + worker pool",
        description=(
            "Run the repro.serve/v1 protocol across a pool of worker "
            "processes behind one gateway (repro.shard): a consistent-"
            "hash ring shards groups over workers, per-verdict snapshots "
            "make worker death survivable, and failover re-shards a dead "
            "worker's groups onto survivors without losing a verdict. "
            "Default mode serves until --rounds-limit verdicts; --drill "
            "runs the kill-a-worker acceptance drill; --chaos runs the "
            "self-healing chaos drill (seeded kills, restarts, disk "
            "faults, upstream stalls); --bench measures 1-worker vs "
            "N-worker scaling into BENCH_shard.json."
        ),
    )
    shard.add_argument("--host", default="127.0.0.1", help="gateway bind address")
    shard.add_argument(
        "--port", type=int, default=7781, metavar="P",
        help="gateway listen port (0 = ephemeral; default 7781)",
    )
    shard.add_argument(
        "--workers", type=int, default=4, metavar="W",
        help="worker processes (default 4)",
    )
    shard.add_argument(
        "--groups", type=int, default=8, metavar="G",
        help="tag groups to host, named group-000.. (default 8)",
    )
    shard.add_argument(
        "--population", type=int, default=100, metavar="N",
        help="tags per group (default 100)",
    )
    shard.add_argument(
        "--tolerance", type=int, default=2, metavar="M",
        help="missing-tag tolerance per group (default 2)",
    )
    shard.add_argument(
        "--alpha", type=float, default=0.9, help="detection confidence"
    )
    shard.add_argument("--seed", type=int, default=None, help="master seed")
    shard.add_argument(
        "--counter-tags", action="store_true",
        help="host counter-mode groups (serve mode only; the drill "
        "forces counter-free groups for its bit-identity check)",
    )
    shard.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="snapshot directory (default: a fresh temp dir)",
    )
    shard.add_argument(
        "--rounds-limit", type=int, default=None, metavar="K",
        help="serve mode: exit after K verdicts cluster-wide "
        "(default: run until interrupted)",
    )
    shard.add_argument(
        "--drill", action="store_true",
        help="run the kill-a-worker drill instead of serving "
        "(exit 1 unless zero verdicts were lost)",
    )
    shard.add_argument(
        "--rounds", type=int, default=3, metavar="T",
        help="drill/bench rounds per group (default 3)",
    )
    shard.add_argument(
        "--kill-fraction", type=float, default=0.25, metavar="F",
        help="drill: kill a worker after this fraction of expected "
        "verdicts (default 0.25)",
    )
    shard.add_argument(
        "--concurrency", type=int, default=8, metavar="C",
        help="drill/bench reader sessions in flight (default 8)",
    )
    shard.add_argument(
        "--chaos", action="store_true",
        help="run the self-healing chaos drill: seeded worker kills, "
        "auto-restarts, hand-backs, snapshot disk faults and an "
        "upstream stall (exit 1 unless zero verdicts were lost, every "
        "worker healed and the verdict digests match fault-free)",
    )
    shard.add_argument(
        "--chaos-seed", type=int, default=None, metavar="S",
        help="chaos: seed for the fault schedule draws (default: the "
        "cluster's master --seed)",
    )
    shard.add_argument(
        "--chaos-out", default=None, metavar="PATH",
        help="chaos: write the full ChaosResult as JSON (CI's numeric "
        "gate reads restart/hand-back/disk-fault counts from it)",
    )
    shard.add_argument(
        "--bench", action="store_true",
        help="measure 1-worker vs --workers scaling and write --out",
    )
    shard.add_argument(
        "--out", default="BENCH_shard.json", metavar="PATH",
        help="bench mode: where to write the perf record "
        "(default BENCH_shard.json)",
    )
    shard.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="drill: write the merged reader+gateway+worker trace as "
        "span JSONL (its digest is invariant across --workers)",
    )
    shard.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="drill: write the final /metrics scrape body "
        "(Prometheus text, aggregated across workers)",
    )
    shard.add_argument(
        "--telemetry-port", type=int, default=0, metavar="P",
        help="drill: port for the live /metrics, /healthz and /slo "
        "endpoints (0 = ephemeral; default 0)",
    )
    shard.add_argument(
        "--wire-version", choices=("v1", "v2"), default="v1",
        help="drill: framing the readers offer the gateway (the "
        "gateway<->worker hop negotiates on its own; default v1)",
    )
    shard.add_argument(
        "--pipeline-depth", type=int, default=1, metavar="D",
        help="drill: overlapped rounds per reader session "
        "(> 1 requires --wire-version v2; default 1)",
    )

    obs = sub.add_parser(
        "obs",
        help="inspect traces and metrics a distributed run wrote",
        description=(
            "Read back distributed-observability artifacts: 'tail' "
            "merges span JSONL files into the causal trace tree and "
            "prints the span-tree digest; 'report' summarises SLO "
            "attainment from traces and an optional /metrics scrape."
        ),
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_tail = obs_sub.add_parser(
        "tail", help="pretty-print merged traces from span JSONL files"
    )
    obs_tail.add_argument(
        "traces", nargs="+", metavar="TRACE.jsonl",
        help="span JSONL files (a drill's --trace-out, or per-process "
        "spans-*.jsonl files)",
    )
    obs_tail.add_argument(
        "--max-traces", type=int, default=None, metavar="K",
        help="show at most K traces (default: all)",
    )
    obs_report = obs_sub.add_parser(
        "report", help="summarise SLO attainment from obs artifacts"
    )
    obs_report.add_argument(
        "traces", nargs="*", metavar="TRACE.jsonl",
        help="span JSONL files to summarise (optional)",
    )
    obs_report.add_argument(
        "--metrics", default=None, metavar="SCRAPE.txt",
        help="a /metrics scrape body (Prometheus text) to fold in",
    )

    sub.add_parser("list", help="list every reproducible experiment")
    return parser


def _grid(args: argparse.Namespace) -> ExperimentGrid:
    # Environment (REPRO_FULL / REPRO_TRIALS) sets the baseline; flags win.
    grid = paper_grid() if args.full else grid_from_env()
    if args.trials is not None:
        grid = replace(grid, trials=args.trials)
    if args.seed is not None:
        grid = replace(grid, master_seed=args.seed)
    if getattr(args, "batch_size", None) is not None:
        grid = replace(grid, batch_size=args.batch_size)
    return grid


def _configure_plan_cache(args: argparse.Namespace, obs=None) -> None:
    """Install the on-disk plan cache (and obs counters) if requested."""
    from .core.plancache import configure_default_cache, default_cache

    if getattr(args, "plan_cache", None) is not None:
        configure_default_cache(path=args.plan_cache)
    if obs is not None:
        default_cache().bind_metrics(obs.registry)


def _run_plan(args: argparse.Namespace) -> str:
    _configure_plan_cache(args)
    n, m, alpha, c = args.population, args.tolerance, args.alpha, args.comm_budget
    f_trp = optimal_trp_frame_size(n, m, alpha)
    f_utrp = optimal_utrp_frame_size(n, m, alpha, c)
    lines = [
        f"deployment: n={n} tags, tolerate m={m} missing, confidence alpha={alpha}",
        f"TRP  (trusted reader) : frame size f = {f_trp}"
        f"  [g(n, m+1, f) = {detection_probability(n, m + 1, f_trp):.4f}]",
        f"UTRP (untrusted, c={c}): frame size f = {f_utrp}"
        f"  [Eq.3 detection = {utrp_detection_probability(n, m, f_utrp, c):.4f}]",
    ]
    if args.rounds > 1:
        from .core.rounds import plan_rounds

        lines.append("")
        lines.append("multi-round TRP plans at equal confidence:")
        for plan in plan_rounds(n, m, alpha, max_rounds=args.rounds):
            lines.append(
                f"  {plan.rounds} round(s) x {plan.frame_size} slots = "
                f"{plan.total_slots} total"
            )
    if args.identify_beta is not None:
        from .core.identification import rounds_to_identify

        forensic = rounds_to_identify(n, m + 1, f_trp, beta=args.identify_beta)
        lines.append("")
        lines.append(
            f"forensics: ~{forensic} extra TRP rounds name all m+1={m + 1} "
            f"missing tags w.p. {args.identify_beta}"
        )
    return "\n".join(lines)


def _obs_context(args: argparse.Namespace):
    """An ObsContext when any obs output was requested, else None."""
    if getattr(args, "trace_out", None) is None and getattr(
        args, "metrics_out", None
    ) is None:
        return None
    from .obs import ObsContext

    return ObsContext()


def _write_obs_outputs(obs, args: argparse.Namespace) -> List[str]:
    """Write requested exports; returns report lines."""
    lines: List[str] = []
    if obs is None:
        return lines
    if args.trace_out is not None:
        digest = obs.write_trace(args.trace_out)
        lines.append(f"trace written to {args.trace_out}")
        lines.append(f"trace digest: {digest}")
    if args.metrics_out is not None:
        obs.write_metrics(args.metrics_out)
        lines.append(f"metrics written to {args.metrics_out}")
    return lines


def _run_fleet_remote(args: argparse.Namespace) -> str:
    from .experiments.grid import DEFAULT_SEED
    from .fleet import (
        RemoteCampaignConfig,
        drive_remote_campaign,
        format_remote_campaign,
    )

    config = RemoteCampaignConfig(
        host=args.connect_host,
        port=args.connect_port,
        groups=args.groups,
        rounds=args.rounds,
        protocol=args.protocol,
        population=args.population,
        tolerance=args.tolerance,
        confidence=args.alpha,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        counter_tags=True if args.counter_tags else None,
        jobs=args.jobs,
        wire_version=_wire_version(args),
        pipeline_depth=args.pipeline_depth,
    )
    return format_remote_campaign(drive_remote_campaign(config))


def _run_fleet(args: argparse.Namespace) -> str:
    if args.connect_host is not None:
        return _run_fleet_remote(args)
    from .fleet import (
        CampaignConfig,
        FleetScenario,
        default_scenario,
        format_campaign_result,
        run_campaign,
    )
    from .experiments.grid import DEFAULT_SEED

    if args.scenario is not None:
        scenario = FleetScenario.load(args.scenario)
    else:
        scenario = default_scenario(groups=args.groups)
    from .fleet.executor import resolve_jobs

    fault_plan = None
    if args.fault_plan is not None:
        from .faults import FaultPlan

        fault_plan = FaultPlan.load(args.fault_plan)
    churn_plan = None
    if args.churn_plan is not None:
        from .population import ChurnPlan

        churn_plan = ChurnPlan.load(args.churn_plan)
    vote = args.vote if args.vote is not None else (0, 0)
    config = CampaignConfig(
        ticks=args.rounds,
        jobs=resolve_jobs(args.jobs),
        master_seed=args.seed if args.seed is not None else DEFAULT_SEED,
        time_scale=args.time_scale,
        diagnostic_trials=args.diag_trials,
        fault_plan=fault_plan,
        churn_plan=churn_plan,
        vote_quorum=vote[0],
        vote_window=vote[1],
        salvage_partial=args.salvage,
        auto_resync=args.resync,
    )
    obs = _obs_context(args)
    _configure_plan_cache(args, obs)
    result = run_campaign(scenario, config, obs=obs)
    report = format_campaign_result(result)
    if args.journal is not None:
        result.journal.dump(args.journal)
        report += f"\njournal written to {args.journal}"
    for line in _write_obs_outputs(obs, args):
        report += f"\n{line}"
    return report


def _verdict_lines(journal) -> List[str]:
    """One stable line per round — the CI chaos gate's byte contract."""
    lines = []
    for r in journal.records:
        tags = []
        if r.alarmed:
            tags.append("ALARM")
        if r.vote_suppressed:
            tags.append("SUPPRESSED")
        if r.salvaged:
            tags.append("SALVAGED")
        if r.degraded:
            tags.append("DEGRADED")
        if r.resync_recovered or r.resync_unresolved:
            tags.append(
                f"resync={r.resync_recovered}/{r.resync_unresolved}"
            )
        if r.injected:
            tags.append("faults=" + ",".join(r.injected))
        line = f"{r.tick:03d} {r.group} {r.protocol:<8} {r.verdict:<18}"
        lines.append((line + " " + " ".join(tags)).rstrip() if tags else line.rstrip())
    return lines


def _run_chaos(args: argparse.Namespace) -> str:
    from .experiments.grid import DEFAULT_SEED

    if args.sweep:
        from dataclasses import replace as dc_replace

        from .experiments.chaos import (
            ChaosConfig,
            format_chaos_result,
            run_chaos,
        )

        cfg = ChaosConfig()
        if args.trials is not None:
            cfg = dc_replace(cfg, trials=args.trials)
        if args.seed is not None:
            cfg = dc_replace(cfg, master_seed=args.seed)
        return format_chaos_result(run_chaos(cfg))

    from .faults import FaultPlan, example_plan
    from .fleet import (
        CampaignConfig,
        default_scenario,
        format_campaign_result,
        run_campaign,
    )
    from .fleet.executor import resolve_jobs

    plan = (
        FaultPlan.load(args.fault_plan)
        if args.fault_plan is not None
        else example_plan()
    )
    config = CampaignConfig(
        ticks=args.rounds,
        jobs=resolve_jobs(args.jobs),
        master_seed=args.seed if args.seed is not None else DEFAULT_SEED,
        time_scale=0.0,
        fault_plan=plan,
        vote_quorum=0 if args.no_vote else args.vote[0],
        vote_window=0 if args.no_vote else args.vote[1],
        salvage_partial=not args.no_salvage,
        auto_resync=not args.no_resync,
    )
    obs = _obs_context(args)
    _configure_plan_cache(args, obs)
    scenario = default_scenario(groups=args.groups)
    result = run_campaign(scenario, config, obs=obs)
    report = format_campaign_result(result)
    verdicts = _verdict_lines(result.journal)
    report += "\n\nverdict sequence:\n" + "\n".join(verdicts)
    if args.verdicts_out is not None:
        with open(args.verdicts_out, "w") as fh:
            fh.write("\n".join(verdicts) + "\n")
        report += f"\nverdicts written to {args.verdicts_out}"
    if args.journal is not None:
        result.journal.dump(args.journal)
        report += f"\njournal written to {args.journal}"
    for line in _write_obs_outputs(obs, args):
        report += f"\n{line}"
    return report


def _run_churn(args: argparse.Namespace) -> str:
    from .experiments.grid import DEFAULT_SEED

    if args.smoke:
        from .fleet import (
            CampaignConfig,
            default_scenario,
            format_campaign_result,
            run_campaign,
        )
        from .fleet.executor import resolve_jobs
        from .population import ChurnPlan

        # The gate plan: every membership op at least once, mid-campaign.
        plan = ChurnPlan.scripted(
            [
                (1, "group-00", "commission", 2),
                (2, "group-01", "decommission", 1),
                (3, "group-02", "replace", 2),
            ]
        )
        config = CampaignConfig(
            ticks=args.rounds if args.rounds is not None else 6,
            jobs=resolve_jobs(1),
            master_seed=args.seed if args.seed is not None else DEFAULT_SEED,
            time_scale=0.0,
            churn_plan=plan,
        )
        scenario = default_scenario(groups=max(3, args.groups))
        result = run_campaign(scenario, config)
        report = format_campaign_result(result)
        report += (
            "\nchurn smoke: scripted plan applied "
            f"({sum(result.churn_applied.values())} membership events)"
        )
        return report

    from dataclasses import replace as dc_replace

    from .experiments.churn import (
        ChurnStudyConfig,
        format_churn_result,
        run_churn_study,
    )

    cfg = ChurnStudyConfig()
    if args.rounds is not None:
        cfg = dc_replace(cfg, rounds=args.rounds)
    if args.population is not None:
        cfg = dc_replace(cfg, population=args.population)
    if args.tolerance is not None:
        cfg = dc_replace(cfg, tolerance=args.tolerance)
    if args.alpha is not None:
        cfg = dc_replace(cfg, confidence=args.alpha)
    if args.seed is not None:
        cfg = dc_replace(cfg, master_seed=args.seed)
    report = format_churn_result(run_churn_study(cfg))
    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        report += f"\nreport written to {args.out}"
    return report


def _run_bench(args: argparse.Namespace) -> str:
    from .experiments.grid import DEFAULT_SEED
    from .obs import format_bench_record, run_bench, write_bench_record

    record = run_bench(
        quick=args.quick,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
    )
    write_bench_record(record, args.out)
    mode = "quick" if args.quick else "full"
    return (
        f"bench ({mode}) perf record written to {args.out}\n\n"
        + format_bench_record(record)
    )


def _run_serve(args: argparse.Namespace) -> str:
    import asyncio

    from .experiments.grid import DEFAULT_SEED
    from .serve import MonitoringService, SessionConfig

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    session_config = SessionConfig(wall_us_per_s=args.timer_scale)

    async def _serve() -> str:
        service = MonitoringService(session_config=session_config)
        for i in range(args.groups):
            service.create_group(
                f"group-{i:03d}",
                args.population,
                args.tolerance,
                args.alpha,
                seed=seed + i,
                counter_tags=True,
            )
        await service.start(host=args.host, port=args.port)
        print(
            f"serving {args.groups} group(s) on {args.host}:{service.port} "
            f"(seed {seed}; group-000..group-{args.groups - 1:03d})",
            flush=True,
        )

        def _verdicts() -> int:
            return sum(
                len(g.reports) + g.timeouts
                for g in service.groups.values()
            )

        try:
            while args.rounds_limit is None or _verdicts() < args.rounds_limit:
                await asyncio.sleep(0.05)
        except asyncio.CancelledError:
            pass
        finally:
            await service.close()
        return (
            f"served {_verdicts()} verdict(s) across "
            f"{service.sessions_served} session(s); "
            f"{service.sessions_refused} refused"
        )

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return "interrupted"


def _parse_endpoint(value: str) -> tuple:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"--endpoint must be HOST:PORT, got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"--endpoint port must be an integer, got {value!r}")


def _wire_version(args: argparse.Namespace) -> int:
    """``--wire-version v1|v2`` to the protocol's integer version."""
    return int(args.wire_version.lstrip("v"))


def _run_loadgen(args: argparse.Namespace) -> str:
    from .experiments.grid import DEFAULT_SEED
    from .obs.bench import write_bench_record
    from .serve import LoadgenConfig, format_loadgen_result, run_loadgen

    endpoints = (
        [_parse_endpoint(e) for e in args.endpoint]
        if args.endpoint
        else None
    )
    remote = endpoints is not None or args.connect_host is not None
    config = LoadgenConfig(
        groups=args.groups,
        rounds=args.rounds,
        sessions=args.sessions,
        concurrency=args.concurrency,
        arrival_rate=args.arrival_rate,
        population=args.population,
        tolerance=args.tolerance,
        confidence=args.alpha,
        protocol=args.protocol,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        group_prefix=(
            args.group_prefix
            if args.group_prefix is not None
            else ("group" if remote else "load")
        ),
        # `python -m repro serve` hosts counter-tag groups, so
        # --connect-host campaigns field counter-tag populations to
        # match; --endpoint lists (shard gateways/workers, counter-free
        # by default) keep the protocol-tracking default.
        counter_tags=True if args.connect_host is not None else None,
        reader=args.reader,
        wire_version=_wire_version(args),
        pipeline_depth=args.pipeline_depth,
        churn_rate=args.churn_rate,
    )
    tracer = None
    if args.trace_out is not None:
        from .obs.tracing import Tracer

        tracer = Tracer("loadgen", path=args.trace_out)
    result = run_loadgen(
        config,
        host=args.connect_host if endpoints is None else None,
        port=(
            args.connect_port
            if endpoints is None and args.connect_host is not None
            else None
        ),
        endpoints=endpoints,
        tracer=tracer,
    )
    write_bench_record(result.record, args.out)
    report = format_loadgen_result(result)
    if tracer is not None:
        from .obs.tracing import span_tree_digest

        report += (
            f"\ntrace written to {args.trace_out} "
            f"({len(tracer)} spans; digest {span_tree_digest(tracer.spans)[:16]})"
        )
    return report + f"\nperf record written to {args.out}"


def _run_shard(args: argparse.Namespace) -> int:
    import asyncio

    from .experiments.grid import DEFAULT_SEED
    from .shard import ShardConfig

    seed = args.seed if args.seed is not None else DEFAULT_SEED

    if args.bench:
        from .obs.bench import write_bench_record
        from .shard import ShardBenchConfig, format_shard_bench, run_shard_bench

        bench = ShardBenchConfig(
            workers=args.workers,
            groups=args.groups,
            rounds=args.rounds,
            concurrency=args.concurrency,
            population=args.population,
            tolerance=args.tolerance,
            confidence=args.alpha,
            seed=seed,
        )
        result = run_shard_bench(bench)
        write_bench_record(result.record, args.out)
        print(format_shard_bench(result))
        print(f"perf record written to {args.out}")
        return 0

    config = ShardConfig(
        workers=args.workers,
        groups=args.groups,
        host=args.host,
        port=args.port,
        population=args.population,
        tolerance=args.tolerance,
        confidence=args.alpha,
        seed=seed,
        counter_tags=args.counter_tags,
        state_dir=args.state_dir,
    )

    if args.chaos:
        import dataclasses
        import json

        from .obs import ObsContext
        from .shard import format_chaos_result, run_chaos_drill

        if args.chaos_seed is not None:
            config = dataclasses.replace(config, chaos_seed=args.chaos_seed)
        result = run_chaos_drill(
            config,
            rounds=args.rounds,
            concurrency=args.concurrency,
            obs=ObsContext(),
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            wire_version=_wire_version(args),
            pipeline_depth=args.pipeline_depth,
        )
        print(format_chaos_result(result))
        if args.chaos_out is not None:
            with open(args.chaos_out, "w") as fh:
                json.dump(result.to_dict(), fh, indent=1)
            print(f"chaos result written to {args.chaos_out}")
        if args.trace_out is not None:
            print(f"merged trace written to {args.trace_out}")
        if args.metrics_out is not None:
            print(f"metrics scrape written to {args.metrics_out}")
        return 0 if result.ok else 1

    if args.drill:
        from .shard import format_drill_result, run_drill

        result = run_drill(
            config,
            rounds=args.rounds,
            kill_fraction=args.kill_fraction,
            concurrency=args.concurrency,
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            telemetry_port=args.telemetry_port,
            wire_version=_wire_version(args),
            pipeline_depth=args.pipeline_depth,
        )
        print(format_drill_result(result))
        if args.trace_out is not None:
            print(f"merged trace written to {args.trace_out}")
        if args.metrics_out is not None:
            print(f"metrics scrape written to {args.metrics_out}")
        return 0 if result.ok else 1

    from .shard import ShardCluster

    from .obs import ObsContext

    async def _serve() -> str:
        # Always wire an ObsContext: /metrics should expose the
        # gateway/supervisor shard_* families, not just worker merges.
        async with ShardCluster(
            config, obs=ObsContext(), telemetry_port=args.telemetry_port
        ) as cluster:
            telemetry = (
                f"; telemetry on {config.host}:{cluster.telemetry.port} "
                "(/metrics /healthz /slo)"
                if cluster.telemetry is not None
                else ""
            )
            print(
                f"sharded gateway on {config.host}:{cluster.port} — "
                f"{config.workers} worker(s), {config.groups} group(s) "
                f"(seed {seed}; snapshots in {cluster.state_dir})"
                + telemetry,
                flush=True,
            )
            try:
                while (
                    args.rounds_limit is None
                    or cluster.verdicts_delivered < args.rounds_limit
                ):
                    await asyncio.sleep(0.05)
            except asyncio.CancelledError:
                pass
            return (
                f"proxied {cluster.verdicts_delivered} verdict(s) across "
                f"{cluster.gateway.sessions_served} session(s); "
                f"{cluster.supervisor.failovers} failover(s)"
            )

    try:
        print(asyncio.run(_serve()))
    except KeyboardInterrupt:
        print("interrupted")
    return 0


def _run_obs(args: argparse.Namespace) -> str:
    from .obs.cli import run_obs_report, run_obs_tail

    if args.obs_command == "tail":
        return run_obs_tail(args.traces, max_traces=args.max_traces)
    return run_obs_report(args.traces, metrics_path=args.metrics)


def _run_list() -> str:
    from .experiments.manifest import EXPERIMENTS

    lines = ["reproducible experiments (python -m repro <figN> | pytest benchmarks/):"]
    for exp_id in sorted(EXPERIMENTS):
        exp = EXPERIMENTS[exp_id]
        lines.append(
            f"  {exp_id:<6} {exp.title:<48} [{exp.paper_source}] -> {exp.bench}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point. Returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "plan":
        print(_run_plan(args))
        return 0
    if args.command == "list":
        print(_run_list())
        return 0
    if args.command == "fleet":
        print(_run_fleet(args))
        return 0
    if args.command == "chaos":
        print(_run_chaos(args))
        return 0
    if args.command == "churn":
        print(_run_churn(args))
        return 0
    if args.command == "bench":
        print(_run_bench(args))
        return 0
    if args.command == "serve":
        print(_run_serve(args))
        return 0
    if args.command == "loadgen":
        print(_run_loadgen(args))
        return 0
    if args.command == "shard":
        return _run_shard(args)
    if args.command == "obs":
        try:
            print(_run_obs(args))
        except BrokenPipeError:
            # `repro obs tail trace.jsonl | head` closes our stdout
            # early; that is normal pipeline use, not an error.
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
            return 0
        return 0

    grid = _grid(args)
    if args.command in ("fig4", "fig5", "fig6", "fig7"):
        module = {"fig4": fig4, "fig5": fig5, "fig6": fig6, "fig7": fig7}[
            args.command
        ]
        from .fleet.executor import resolve_jobs

        obs = _obs_context(args)
        _configure_plan_cache(args, obs)
        if obs is not None:
            with obs.profiler.timer("experiment.run"):
                result = module.run(grid, jobs=resolve_jobs(args.jobs))
            from .experiments.observe import publish_figure_result

            publish_figure_result(obs, args.command, result)
        else:
            result = module.run(grid, jobs=resolve_jobs(args.jobs))
        print(module.format_result(result))
        if args.csv:
            from .experiments.export import figure_rows, write_csv

            headers, rows = figure_rows(result)
            write_csv(args.csv, headers, rows)
            print(f"\nCSV written to {args.csv}")
        for line in _write_obs_outputs(obs, args):
            print(line)
    elif args.command == "ablations":
        _configure_plan_cache(args)
        print(ablations.format_wallclock(ablations.run_wallclock(grid)))
        print()
        print(ablations.format_alpha_sweep(ablations.run_alpha_sweep()))
        print()
        print(ablations.format_comm_budget_sweep(ablations.run_comm_budget_sweep()))
        print()
        print(
            ablations.format_attack_matrix(
                ablations.run_attack_matrix(master_seed=grid.master_seed)
            )
        )
        print()
        print(
            ablations.format_gfunc_approximation(
                ablations.run_gfunc_approximation()
            )
        )
        print()
        print(
            ablations.format_alarm_policy_study(
                ablations.run_alarm_policy_study(master_seed=grid.master_seed),
                tolerance=10,
            )
        )
        print()
        print(
            ablations.format_unreliable_channel_study(
                ablations.run_unreliable_channel_study(
                    master_seed=grid.master_seed
                )
            )
        )
        print()
        print(ablations.format_timer_design(ablations.run_timer_design()))
        print()
        print(
            ablations.format_strategy_comparison(
                ablations.run_strategy_comparison(
                    trials=min(grid.trials, 200), master_seed=grid.master_seed
                )
            )
        )
        print()
        print(ablations.format_rounds_tradeoff(ablations.run_rounds_tradeoff()))
    else:  # pragma: no cover - argparse enforces the choices
        raise AssertionError(f"unhandled command {args.command}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
