"""Profiling hooks: phase timers with wall-clock + air-time accounting.

A simulation has two clocks. *Wall clock* is what the optimisation
work on the ROADMAP cares about ("as fast as the hardware allows");
*simulated air time* is what the paper's cost model counts. One timer
records both: wrap a hot path in :meth:`Profiler.timer` and it
accumulates host seconds; set ``sim_air_us`` on the handle (or pass it
up front) and the phase also accumulates the simulated cost it stood
for. The bench exporter then reports, per phase, how much hardware
time bought how much simulated protocol work.

Timers are deliberately cheap — one ``perf_counter`` pair and a locked
accumulate — and :data:`NULL_PROFILER` makes instrumentation free to
leave in place: hot paths take ``profiler=NULL_PROFILER`` and pay a
no-op context manager when nobody is measuring.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["PhaseStats", "TimerHandle", "Profiler", "NULL_PROFILER"]


@dataclass
class PhaseStats:
    """Accumulated cost of one profiled phase.

    Attributes:
        count: completed timer runs.
        wall_s_total: summed host wall-clock seconds.
        wall_s_min / wall_s_max: extremes over runs.
        sim_air_us_total: summed simulated air time attributed to the
            phase (0 when the phase has no protocol meaning).
    """

    count: int = 0
    wall_s_total: float = 0.0
    wall_s_min: float = float("inf")
    wall_s_max: float = 0.0
    sim_air_us_total: float = 0.0

    @property
    def wall_s_mean(self) -> float:
        return self.wall_s_total / self.count if self.count else 0.0

    def add(self, wall_s: float, sim_air_us: float = 0.0) -> None:
        self.count += 1
        self.wall_s_total += wall_s
        self.wall_s_min = min(self.wall_s_min, wall_s)
        self.wall_s_max = max(self.wall_s_max, wall_s)
        self.sim_air_us_total += sim_air_us


class TimerHandle:
    """Context manager for one timed run.

    The body may attribute simulated cost by assigning
    ``handle.sim_air_us`` before exit.
    """

    def __init__(self, profiler: "Profiler", phase: str, sim_air_us: float = 0.0):
        self._profiler = profiler
        self._phase = phase
        self.sim_air_us = sim_air_us
        self._start: Optional[float] = None

    def __enter__(self) -> "TimerHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - (self._start or time.perf_counter())
        # Failed runs still count: a timeout-prone path is exactly the
        # one an operator wants wall-clock evidence about.
        self._profiler.record(self._phase, wall, self.sim_air_us)


class Profiler:
    """Thread-safe accumulator of :class:`PhaseStats` by phase name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._phases: Dict[str, PhaseStats] = {}

    def timer(self, phase: str, sim_air_us: float = 0.0) -> TimerHandle:
        """A context manager that accumulates into ``phase`` on exit."""
        return TimerHandle(self, phase, sim_air_us)

    def record(self, phase: str, wall_s: float, sim_air_us: float = 0.0) -> None:
        """Accumulate one completed run directly (no timing)."""
        with self._lock:
            if phase not in self._phases:
                self._phases[phase] = PhaseStats()
            self._phases[phase].add(wall_s, sim_air_us)

    def stats(self) -> Dict[str, PhaseStats]:
        """Phase -> accumulated stats, sorted by phase name."""
        with self._lock:
            return {k: self._phases[k] for k in sorted(self._phases)}

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's phases into this one."""
        for phase, st in other.stats().items():
            with self._lock:
                if phase not in self._phases:
                    self._phases[phase] = PhaseStats()
                mine = self._phases[phase]
                mine.count += st.count
                mine.wall_s_total += st.wall_s_total
                mine.wall_s_min = min(mine.wall_s_min, st.wall_s_min)
                mine.wall_s_max = max(mine.wall_s_max, st.wall_s_max)
                mine.sim_air_us_total += st.sim_air_us_total

    def as_records(self, kind_of=None) -> List[dict]:
        """Phase stats as JSON-ready timing records (bench schema).

        Args:
            kind_of: optional ``phase -> kind`` mapping function; the
                default takes everything before the first dot
                ("fastpath.trp" -> "fastpath").
        """
        records = []
        for phase, st in self.stats().items():
            kind = (
                kind_of(phase) if kind_of is not None
                else phase.split(".", 1)[0]
            )
            records.append(
                {
                    "name": phase,
                    "kind": kind,
                    "reps": st.count,
                    "wall_s_total": st.wall_s_total,
                    "wall_s_mean": st.wall_s_mean,
                    "wall_s_min": st.wall_s_min if st.count else 0.0,
                    "wall_s_max": st.wall_s_max,
                    "sim_air_us_total": st.sim_air_us_total,
                }
            )
        return records


class _NullTimer:
    sim_air_us = 0.0

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NullProfiler(Profiler):
    """Profiler that measures nothing; default for instrumented paths."""

    _NULL_TIMER = _NullTimer()

    def timer(self, phase: str, sim_air_us: float = 0.0):  # type: ignore[override]
        return self._NULL_TIMER

    def record(self, phase: str, wall_s: float, sim_air_us: float = 0.0) -> None:
        return None


#: Shared no-op profiler: safe default argument for hot paths.
NULL_PROFILER = _NullProfiler()
