"""The obs event bus: typed, deterministically ordered events.

Publishers run on whatever thread does the work — fleet rounds on
executor workers, figure cells on pool threads, protocol scans on the
caller — so arrival order at the bus is racy. Determinism therefore
cannot come from arrival order; it comes from the *data*: every event
carries a ``scope`` (a logical stream only one thread ever publishes
into, e.g. one fleet tick, one grid cell, one traced channel) and an
``index`` (its position within that scope). The canonical event order
is ``(scope, index)``, which is a pure function of the seed, so two
runs of the same scenario produce identical traces whatever the
``--jobs`` setting — the same argument
:mod:`repro.fleet.campaign` makes for its journal.

Wall-clock time is recorded (``wall_ns``) but excluded from the
deterministic export and digest, exactly like
:meth:`repro.fleet.journal.FleetJournal.digest` excludes it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

__all__ = ["ObsEvent", "EventBus"]

#: The scope used when a publisher does not name one (single-threaded
#: publishers — scripts, tests, the Monte Carlo runner).
DEFAULT_SCOPE = "main"


def _jsonify(value):
    """Coerce a field value to something ``json.dumps`` accepts.

    numpy scalars and arrays leak into fields naturally (slot counts,
    bitstring sums); exporters must never crash on them.
    """
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class ObsEvent:
    """One published event.

    Attributes:
        name: dotted event type ("fleet.round", "channel.poll", ...).
        scope: ordering stream the event belongs to. Canonical trace
            order sorts by ``(scope, index)``; only one thread may
            publish into a given scope.
        index: position within the scope, assigned by the bus.
        fields: JSON-safe payload (coerced at publish time).
        wall_ns: host wall clock at publish (``time.monotonic_ns``) —
            excluded from deterministic exports and digests.
    """

    name: str
    scope: str
    index: int
    fields: Mapping[str, object] = field(default_factory=dict)
    wall_ns: int = 0

    def deterministic_dict(self) -> Dict[str, object]:
        """The digest-relevant projection (no wall clock)."""
        return {
            "name": self.name,
            "scope": self.scope,
            "index": self.index,
            "fields": dict(self.fields),
        }


class EventBus:
    """Append-only event sink with per-scope deterministic ordering.

    Thread-safe: ``emit`` may be called from any thread. Subscribers
    are invoked synchronously on the publishing thread (keep them
    cheap; they exist so legacy sinks like
    :class:`~repro.simulation.trace.TracingChannel` can mirror events
    without a second source of truth).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[ObsEvent] = []
        self._scope_counters: Dict[str, int] = {}
        self._subscribers: List[Callable[[ObsEvent], None]] = []

    def emit(
        self,
        name: str,
        scope: str = DEFAULT_SCOPE,
        **fields,
    ) -> ObsEvent:
        """Publish one event; returns it (index assigned)."""
        clean = {k: _jsonify(v) for k, v in fields.items()}
        with self._lock:
            index = self._scope_counters.get(scope, 0)
            self._scope_counters[scope] = index + 1
            event = ObsEvent(
                name=name,
                scope=scope,
                index=index,
                fields=clean,
                wall_ns=time.monotonic_ns(),
            )
            self._events.append(event)
            subscribers = list(self._subscribers)
        for fn in subscribers:
            fn(event)
        return event

    def subscribe(self, fn: Callable[[ObsEvent], None]) -> None:
        """Register a synchronous per-event callback."""
        with self._lock:
            self._subscribers.append(fn)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self, name: Optional[str] = None) -> List[ObsEvent]:
        """Events in canonical ``(scope, index)`` order.

        Args:
            name: restrict to one event type.
        """
        with self._lock:
            snapshot = list(self._events)
        if name is not None:
            snapshot = [e for e in snapshot if e.name == name]
        return sorted(snapshot, key=lambda e: (e.scope, e.index))

    def scopes(self) -> List[str]:
        """Every scope that has published, sorted."""
        with self._lock:
            return sorted(self._scope_counters)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._scope_counters.clear()
