"""Performance records: the ``BENCH_obs.json`` schema and runner.

Every optimisation claim on the ROADMAP needs a before/after number,
so this module defines one machine-readable perf-record shape and a
``python -m repro bench`` runner that fills it from the two hottest
layers: the vectorised Monte Carlo kernels in
:mod:`repro.simulation.fastpath` (kind ``fastpath-kernel``) and the
fleet campaign's round execution (kind ``fleet-round``). The micro
bench suite (`benchmarks/test_microbench_kernels.py`) emits the same
schema into ``BENCH_microbench.json``, so one trajectory of records
accumulates PR over PR.

Wall-clock numbers are host-dependent by nature; the *schema* is the
deterministic part (validated by :func:`validate_bench_record`), and
every record also carries the simulated air time its workload stood
for, so slots-per-second throughput is derivable from any record.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional

from .profiling import Profiler

__all__ = [
    "BENCH_SCHEMA",
    "make_bench_record",
    "validate_bench_record",
    "write_bench_record",
    "run_bench",
    "format_bench_record",
]

#: Schema identifier embedded in (and required of) every record.
BENCH_SCHEMA = "repro.obs.bench/v1"

_TIMING_REQUIRED = {
    "name": str,
    "kind": str,
    "reps": int,
    "wall_s_total": (int, float),
    "wall_s_mean": (int, float),
    "wall_s_min": (int, float),
    "wall_s_max": (int, float),
    "sim_air_us_total": (int, float),
}


def _kind_of(phase: str) -> str:
    """Map a profiler phase to its bench-record kind."""
    if phase.startswith("fastpath."):
        return "fastpath-kernel"
    if phase.startswith("fleet.round"):
        return "fleet-round"
    if phase.startswith("aloha."):
        return "aloha-inventory"
    if phase.startswith("serve.loadgen"):
        return "serve-loadgen"
    if phase.startswith("serve."):
        return "serve-round"
    return phase.split(".", 1)[0]


def host_info() -> Dict[str, str]:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def make_bench_record(
    timings: List[dict],
    quick: bool = False,
    label: str = "bench",
    created_unix: Optional[float] = None,
) -> dict:
    """Assemble (and validate) a perf record from timing dicts."""
    record = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "quick": bool(quick),
        "created_unix": (
            float(created_unix) if created_unix is not None else time.time()
        ),
        "host": host_info(),
        "timings": timings,
    }
    validate_bench_record(record)
    return record


def validate_bench_record(record: object) -> None:
    """Schema check; raises ``ValueError`` with the first violation."""
    if not isinstance(record, dict):
        raise ValueError("bench record must be a JSON object")
    if record.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"schema must be {BENCH_SCHEMA!r}, got {record.get('schema')!r}"
        )
    for key, kind in [
        ("label", str),
        ("quick", bool),
        ("created_unix", (int, float)),
        ("host", dict),
        ("timings", list),
    ]:
        if key not in record:
            raise ValueError(f"missing key {key!r}")
        if not isinstance(record[key], kind):
            raise ValueError(f"{key!r} has wrong type {type(record[key]).__name__}")
    if not record["timings"]:
        raise ValueError("timings must be non-empty")
    for i, timing in enumerate(record["timings"]):
        if not isinstance(timing, dict):
            raise ValueError(f"timings[{i}] must be an object")
        for key, kind in _TIMING_REQUIRED.items():
            if key not in timing:
                raise ValueError(f"timings[{i}] missing {key!r}")
            if isinstance(timing[key], bool) or not isinstance(timing[key], kind):
                raise ValueError(f"timings[{i}].{key} has wrong type")
        if timing["reps"] < 1:
            raise ValueError(f"timings[{i}].reps must be >= 1")
        for key in ("wall_s_total", "wall_s_mean", "wall_s_min", "wall_s_max"):
            if timing[key] < 0:
                raise ValueError(f"timings[{i}].{key} must be >= 0")


def write_bench_record(record: dict, path: str) -> None:
    """Validate, then write the record as pretty JSON."""
    validate_bench_record(record)
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_bench(quick: bool = False, seed: int = 20080617) -> dict:
    """Time the hot paths; return a schema-valid perf record.

    ``quick`` shrinks every workload to smoke-test size (the CI gate);
    the full run is sized for stable means on a laptop-class host.

    Imports are deferred so ``import repro.obs`` stays light and free
    of cycles — the bench reaches *down* into the layers it measures.
    """
    import numpy as np

    from ..fleet import CampaignConfig, default_scenario, run_campaign
    from ..simulation.fastpath import (
        collect_all_slots_trials,
        trp_detection_trials,
        trp_mismatch_count_trials,
        utrp_collusion_detection_trials,
    )

    profiler = Profiler()
    rng = np.random.default_rng(seed)

    trials = 20 if quick else 200
    # The kernels carry their own phase timers; the bench just hands
    # them a live profiler instead of NULL_PROFILER.
    trp_detection_trials(2000, 11, 1391, trials, rng, profiler=profiler)
    trp_mismatch_count_trials(2000, 11, 1391, trials, rng, profiler=profiler)
    collect_all_slots_trials(
        1000, 10, max(2, trials // 10), rng, profiler=profiler
    )
    utrp_collusion_detection_trials(
        1000, 11, 757, 20, max(2, trials // 10), rng, profiler=profiler
    )

    from . import ObsContext

    obs = ObsContext()
    obs.profiler = profiler  # fleet rounds land in the same phase table
    scenario = default_scenario(groups=2 if quick else 4)
    config = CampaignConfig(
        ticks=2 if quick else 5,
        jobs=2,
        master_seed=seed,
        time_scale=0.0,
    )
    run_campaign(scenario, config, obs=obs)

    return make_bench_record(
        profiler.as_records(kind_of=_kind_of),
        quick=quick,
        label="repro-bench",
    )


def format_bench_record(record: dict) -> str:
    """Human-readable timing table for the CLI."""
    headers = ["phase", "kind", "reps", "total s", "mean ms", "sim air s"]
    rows = [
        [
            t["name"],
            t["kind"],
            str(t["reps"]),
            f"{t['wall_s_total']:.3f}",
            f"{t['wall_s_mean'] * 1e3:.2f}",
            f"{t['sim_air_us_total'] / 1e6:.2f}",
        ]
        for t in record["timings"]
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(c.ljust(widths[i]) for i, c in enumerate(row)) for row in rows
    )
    return "\n".join(lines)
