"""repro.obs — unified tracing, metrics and profiling.

The paper's claims are cost/accuracy trade-offs, so every layer of the
reproduction needs to be *measurable*: which slots a round used, how
long a kernel took, how detection probability moved with alpha. Before
this package each layer invented its own event shapes
(:mod:`repro.simulation.trace`, :mod:`repro.fleet.journal`,
ad-hoc counters in :mod:`repro.fleet.metrics`); ``repro.obs`` gives
them one spine:

* :class:`EventBus` — typed, deterministically ordered events that the
  tracing channel, the fleet campaign loop, the Monte Carlo runner and
  the experiment sweeps all publish into;
* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms with deterministic digests and a Prometheus text export;
* :class:`Profiler` — lightweight context-manager timers around hot
  paths, attributing both host wall clock and simulated air time;
* exporters — deterministic JSONL trace dumps (same seed => same
  digest, whatever ``--jobs`` is), Prometheus snapshots, and the
  ``BENCH_obs.json`` perf records ``python -m repro bench`` writes;
* :mod:`repro.obs.tracing` — cross-process spans: deterministic
  trace/span ids propagated over the serve wire protocol, per-process
  JSONL span files, and a merger whose span-tree digest is invariant
  across worker counts;
* :mod:`repro.obs.agg` — registry snapshots shipped over the shard
  control channel and merged cluster-wide with deterministic
  semantics, plus the metric-family self-check and the Prometheus
  text parser the gateway telemetry endpoint stands on.

The determinism contract mirrors :meth:`repro.fleet.journal.
FleetJournal.digest`: everything derived from the seed is digestable;
wall-clock quantities live in excluded fields.
"""

from .agg import (
    AGG_SCHEMA,
    assert_families,
    histogram_quantile,
    merge_snapshots,
    parse_prometheus_text,
    snapshot_registry,
    sum_family,
)
from .bench import (
    BENCH_SCHEMA,
    format_bench_record,
    make_bench_record,
    run_bench,
    validate_bench_record,
    write_bench_record,
)
from .events import EventBus, ObsEvent
from .exporters import (
    prometheus_text,
    trace_digest,
    write_events_jsonl,
    write_prometheus,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiling import NULL_PROFILER, PhaseStats, Profiler
from .tracing import (
    TRACE_SCHEMA,
    Span,
    SpanContext,
    Tracer,
    merge_spans,
    span_tree_digest,
    trace_id_for,
)

__all__ = [
    "AGG_SCHEMA",
    "BENCH_SCHEMA",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "ObsContext",
    "ObsEvent",
    "PhaseStats",
    "Profiler",
    "Span",
    "SpanContext",
    "TRACE_SCHEMA",
    "Tracer",
    "assert_families",
    "format_bench_record",
    "histogram_quantile",
    "make_bench_record",
    "merge_snapshots",
    "merge_spans",
    "parse_prometheus_text",
    "prometheus_text",
    "run_bench",
    "snapshot_registry",
    "span_tree_digest",
    "sum_family",
    "trace_digest",
    "trace_id_for",
    "validate_bench_record",
    "write_bench_record",
    "write_events_jsonl",
    "write_prometheus",
]


class ObsContext:
    """One observability scope: a bus, a registry and a profiler.

    Everything that instruments itself takes one of these (or its
    parts); everything that exports reads from one. Creating a context
    is cheap — CLI commands build one per invocation.
    """

    def __init__(self) -> None:
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.profiler = Profiler()

    def write_trace(self, path: str) -> str:
        """Dump the bus as deterministic JSONL; returns the digest."""
        write_events_jsonl(self.bus.events(), path)
        return trace_digest(self.bus.events())

    def write_metrics(self, path: str) -> None:
        """Dump the registry as a Prometheus text-format snapshot."""
        write_prometheus(self.registry, path)
