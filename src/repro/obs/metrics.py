"""The obs metrics registry: counters, gauges, fixed-bucket histograms.

Shapes follow the Prometheus data model (metric name + label set ->
series) so the text exporter in :mod:`repro.obs.exporters` is a direct
rendering, but two reproduction-specific constraints drive the design:

* **determinism** — histogram bucket boundaries are fixed at
  registration, never derived from the data, so a digest over bucket
  counts is stable run-to-run; and every collection iterates series in
  sorted order;
* **exact quantiles** — the fleet's operator table prints p50/p95 of
  slot and air-time series, which fixed buckets cannot reproduce
  byte-identically, so histograms also retain their raw samples
  (``keep_samples``) and compute exact percentiles from them. At
  fleet-campaign scale (thousands of observations) the memory cost is
  negligible; callers tracking unbounded streams can switch it off.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: 1-2-5 decades: a deterministic general-purpose ladder that covers
#: slot counts (10^1..10^4) and microsecond air times (10^2..10^7).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(0, 8) for m in (1.0, 2.0, 5.0)
)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(labelnames: Sequence[str], labels: Dict[str, str]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Shared machinery: a family of series keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], object] = {}

    def _new_series(self):  # pragma: no cover - subclasses override
        raise NotImplementedError

    def labels(self, **labels: str):
        """The child series for this label combination (create on first
        touch)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            if key not in self._series:
                self._series[key] = self._new_series()
            return self._series[key]

    def _default(self):
        """The single unlabelled series (only when no labels declared)."""
        if self.labelnames:
            raise ValueError(f"{self.name} declares labels; use .labels()")
        return self.labels()

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in sorted label order."""
        with self._lock:
            return sorted(self._series.items(), key=lambda kv: kv[0])


class _CounterSeries:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Counter(_Metric):
    """Monotonically increasing count (rounds run, alarms paged...)."""

    kind = "counter"

    def _new_series(self) -> _CounterSeries:
        return _CounterSeries()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _GaugeSeries:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Metric):
    """A value that goes both ways (groups registered, level in force)."""

    kind = "gauge"

    def _new_series(self) -> _GaugeSeries:
        return _GaugeSeries()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class _HistogramSeries:
    def __init__(self, buckets: Tuple[float, ...], keep_samples: bool):
        self._lock = threading.Lock()
        self.buckets = buckets
        self.keep_samples = keep_samples
        self.bucket_counts = [0] * (len(buckets) + 1)  # +Inf last
        self.count = 0
        self.sum = 0.0
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            # First bucket whose upper bound admits the value; +Inf
            # catches the rest.
            for i, bound in enumerate(self.buckets):
                if v <= bound:
                    self.bucket_counts[i] += 1
                    break
            else:
                self.bucket_counts[-1] += 1
            self.count += 1
            self.sum += v
            if self.keep_samples:
                self.samples.append(v)

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-``le`` counts (+Inf last)."""
        with self._lock:
            out: List[int] = []
            running = 0
            for c in self.bucket_counts:
                running += c
                out.append(running)
            return out

    def percentile(self, q: float) -> float:
        """Exact percentile from retained samples (0 when empty).

        Raises:
            RuntimeError: if samples were not retained.
        """
        if not self.keep_samples:
            raise RuntimeError("histogram was created with keep_samples=False")
        with self._lock:
            if not self.samples:
                return 0.0
            return float(np.percentile(np.asarray(self.samples), q))


class Histogram(_Metric):
    """Distribution with fixed, registration-time bucket boundaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        keep_samples: bool = True,
    ):
        """Raises:
            ValueError: on unsorted, empty or non-finite buckets.
        """
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.buckets = bounds
        self.keep_samples = keep_samples

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self.buckets, self.keep_samples)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def percentile(self, q: float) -> float:
        return self._default().percentile(q)

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum


class MetricsRegistry:
    """One namespace of metrics; idempotent registration.

    ``counter("x", ...)`` twice returns the same object; re-registering
    a name as a different kind (or a histogram with different buckets)
    raises, because silent shape drift is how dashboards rot.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"{name} already registered as {existing.kind}"
                    )
                if tuple(labelnames) != existing.labelnames:
                    raise ValueError(
                        f"{name} already registered with labels "
                        f"{existing.labelnames}"
                    )
                if (
                    isinstance(existing, Histogram)
                    and "buckets" in kwargs
                    and tuple(float(b) for b in kwargs["buckets"])
                    != existing.buckets
                ):
                    raise ValueError(
                        f"{name} already registered with different buckets"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        keep_samples: bool = True,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            help,
            labelnames,
            buckets=buckets,
            keep_samples=keep_samples,
        )

    def collect(self) -> List[_Metric]:
        """Every registered metric, sorted by name (deterministic)."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def digest(self) -> str:
        """SHA-256 over the registry's deterministic state.

        Counter/gauge values, histogram bucket counts, counts and sums
        — everything seed-derived; no wall clock is ever a metric value
        in this codebase's instrumentation.
        """
        state = []
        for metric in self.collect():
            for key, series in metric.series():
                if isinstance(series, _HistogramSeries):
                    value = {
                        "buckets": series.cumulative_counts(),
                        "count": series.count,
                        "sum": series.sum,
                    }
                else:
                    value = series.value
                state.append(
                    {
                        "name": metric.name,
                        "kind": metric.kind,
                        "labels": list(key),
                        "value": value,
                    }
                )
        payload = json.dumps(state, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()
