"""Exporters: deterministic JSONL traces and Prometheus snapshots.

Two output formats, two different contracts:

* the **JSONL trace** is part of the determinism story — events are
  written in canonical ``(scope, index)`` order and
  :func:`trace_digest` hashes them with the wall-clock field removed,
  so two runs under one seed produce equal digests whatever the
  ``--jobs`` setting (the fleet's journal-digest guarantee, extended to
  every publisher);
* the **Prometheus text format** is an operational snapshot — it
  follows the exposition format (escaping, ``_bucket``/``_sum``/
  ``_count`` expansion, ``+Inf``) so real scrape tooling parses it, and
  its ordering is deterministic (sorted metric names, sorted label
  values) even though nobody digests it.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Iterable, List, Sequence, Union

from .events import EventBus, ObsEvent
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _HistogramSeries,
)

__all__ = [
    "events_to_jsonl",
    "write_events_jsonl",
    "trace_digest",
    "prometheus_text",
    "write_prometheus",
]


def _event_list(events: Union[EventBus, Sequence[ObsEvent]]) -> List[ObsEvent]:
    if isinstance(events, EventBus):
        return events.events()
    return sorted(events, key=lambda e: (e.scope, e.index))


def events_to_jsonl(
    events: Union[EventBus, Sequence[ObsEvent]],
    include_wall: bool = True,
) -> str:
    """Render events as JSON lines in canonical order.

    ``include_wall=False`` yields exactly the digested byte stream.
    """
    lines = []
    for event in _event_list(events):
        payload = event.deterministic_dict()
        if include_wall:
            payload["wall_ns"] = event.wall_ns
        lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines)


def write_events_jsonl(
    events: Union[EventBus, Sequence[ObsEvent]],
    path: str,
    include_wall: bool = True,
) -> None:
    """Dump the trace to ``path`` (one event per line)."""
    text = events_to_jsonl(events, include_wall=include_wall)
    with open(path, "w") as fh:
        if text:
            fh.write(text + "\n")


def trace_digest(events: Union[EventBus, Sequence[ObsEvent]]) -> str:
    """SHA-256 of the canonical trace, wall clock excluded.

    Equal across runs of the same seeded scenario, whatever the thread
    count — the property the acceptance check compares.
    """
    text = events_to_jsonl(events, include_wall=False)
    return hashlib.sha256(text.encode()).hexdigest()


def load_events_jsonl(path: str) -> List[dict]:
    """Parse a dumped trace back into plain dicts.

    Raises:
        ValueError: on malformed lines.
    """
    out = []
    with open(path) as fh:
        for lineno, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno + 1}: bad trace line ({error})"
                ) from error
    return out


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames, labelvalues, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry as a Prometheus exposition-format snapshot."""
    lines: List[str] = []
    for metric in registry.collect():
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labelvalues, series in metric.series():
            if isinstance(series, _HistogramSeries):
                cumulative = series.cumulative_counts()
                bounds = [*series.buckets, float("inf")]
                for bound, count in zip(bounds, cumulative):
                    labels = _labels_text(
                        metric.labelnames,
                        labelvalues,
                        extra=[("le", _format_value(bound))],
                    )
                    lines.append(f"{metric.name}_bucket{labels} {count}")
                base = _labels_text(metric.labelnames, labelvalues)
                lines.append(
                    f"{metric.name}_sum{base} {_format_value(series.sum)}"
                )
                lines.append(f"{metric.name}_count{base} {series.count}")
            else:
                labels = _labels_text(metric.labelnames, labelvalues)
                lines.append(
                    f"{metric.name}{labels} {_format_value(series.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Write the snapshot to ``path``."""
    with open(path, "w") as fh:
        fh.write(prometheus_text(registry))
