"""``repro obs`` — read back what a distributed run emitted.

Two modes over the artifacts the serving stack writes:

* ``repro obs tail TRACE.jsonl [...]`` — merge one or more span JSONL
  files (a drill's ``--trace-out``, or per-process ``spans-*.jsonl``
  straight out of a cluster state dir) into the causal trace tree and
  print it with the span-tree digest — the value that must match
  across worker counts;
* ``repro obs report TRACE.jsonl [...] [--metrics SCRAPE.txt]`` —
  summarise SLO attainment: span coverage per process tier, verdict
  breakdown, and (when given a ``/metrics`` scrape body) the
  late-rejection count, deadline-budget attainment and
  bucket-interpolated latency quantiles.

Both read only files; neither needs the cluster to still be alive.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .agg import histogram_quantile, parse_prometheus_text, sum_family
from .tracing import (
    Span,
    format_trace_tree,
    load_span_files,
    merge_spans,
    span_tree_digest,
)

__all__ = ["run_obs_tail", "run_obs_report"]


def run_obs_tail(
    paths: Sequence[str], max_traces: Optional[int] = None
) -> str:
    """The ``repro obs tail`` body: merged tree + digest."""
    spans = merge_spans(load_span_files(paths))
    if not spans:
        return "no spans found"
    traces = len({s.trace_id for s in spans})
    return (
        format_trace_tree(spans, max_traces=max_traces)
        + f"\n\n{len(spans)} span(s) across {traces} trace(s)"
        + f"\nspan-tree digest: {span_tree_digest(spans)}"
    )


def _bucket_profile(
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float],
    family: str,
) -> Tuple[List[float], List[int]]:
    """``(finite bounds, cumulative counts)`` for one histogram family
    in a parsed scrape, pooling every labelled series by ``le``."""
    by_bound: Dict[float, float] = {}
    for (name, labels), value in samples.items():
        if name != f"{family}_bucket":
            continue
        le = dict(labels).get("le")
        if le is None:
            continue
        bound = math.inf if le == "+Inf" else float(le)
        by_bound[bound] = by_bound.get(bound, 0.0) + value
    bounds = sorted(b for b in by_bound if math.isfinite(b))
    cumulative = [int(by_bound[b]) for b in bounds]
    cumulative.append(int(by_bound.get(math.inf, cumulative[-1] if cumulative else 0)))
    return bounds, cumulative


def _span_report(spans: List[Span]) -> List[str]:
    traces: Dict[str, List[Span]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    tiers: Dict[str, int] = {}
    verdicts: Dict[str, int] = {}
    for span in spans:
        tiers[span.name] = tiers.get(span.name, 0) + 1
        verdict = span.fields.get("verdict")
        if verdict is not None and span.hop == 0:
            verdicts[str(verdict)] = verdicts.get(str(verdict), 0) + 1
    lines = [
        f"traces            : {len(traces)}",
        f"spans             : {len(spans)}",
        "spans by tier     : "
        + (
            ", ".join(f"{k}={v}" for k, v in sorted(tiers.items()))
            or "none"
        ),
        "verdicts (roots)  : "
        + (
            ", ".join(f"{k}={v}" for k, v in sorted(verdicts.items()))
            or "none"
        ),
    ]
    stitched = sum(
        1 for members in traces.values() if len({s.hop for s in members}) > 1
    )
    lines.append(
        f"stitched traces   : {stitched} "
        f"(>1 hop; {len(traces) - stitched} single-hop)"
    )
    lines.append(f"span-tree digest  : {span_tree_digest(spans)}")
    return lines


def _metrics_report(text: str) -> List[str]:
    samples = parse_prometheus_text(text)
    verdicts = sum_family(samples, "serve_verdicts_total")
    late = sum_family(samples, "serve_late_rejections_total")
    timeouts = sum_family(samples, "serve_timeouts_total")
    lines = [
        f"verdicts total    : {int(verdicts)}",
        f"timeouts          : {int(timeouts)}",
        f"late rejections   : {int(late)}",
    ]
    bounds, cumulative = _bucket_profile(samples, "serve_deadline_budget_ratio")
    total = cumulative[-1] if cumulative else 0
    if total and 1.0 in bounds:
        within = cumulative[bounds.index(1.0)]
        lines.append(
            f"deadline budget   : {within}/{total} rounds within budget "
            f"({100.0 * within / total:.1f}% SLO attainment)"
        )
    bounds, cumulative = _bucket_profile(samples, "serve_round_latency_us")
    if cumulative and cumulative[-1]:
        p50 = histogram_quantile(bounds, cumulative, 50.0)
        p99 = histogram_quantile(bounds, cumulative, 99.0)
        lines.append(
            f"round latency     : p50 ~{p50:.0f} us, p99 ~{p99:.0f} us "
            "(bucket-interpolated)"
        )
    return lines


def run_obs_report(
    paths: Sequence[str], metrics_path: Optional[str] = None
) -> str:
    """The ``repro obs report`` body: SLO attainment summary."""
    spans = merge_spans(load_span_files(paths))
    sections: List[str] = []
    if spans:
        sections.extend(_span_report(spans))
    elif paths:
        sections.append("no spans found")
    if metrics_path is not None:
        with open(metrics_path) as fh:
            text = fh.read()
        if sections:
            sections.append("")
        sections.extend(_metrics_report(text))
    if not sections:
        return "nothing to report (no trace files, no --metrics)"
    return "\n".join(sections)
