"""Cluster metrics aggregation: snapshot, ship, merge, self-check.

A sharded deployment runs one :class:`~repro.obs.metrics.MetricsRegistry`
per worker process, and each dies with its worker. This module makes
worker metrics survive and compose:

* :func:`snapshot_registry` serialises a registry into a JSON-safe
  document (schema-tagged, with a monotonic ``seq`` so receivers can
  pick the freshest snapshot per worker and never double-count);
* :func:`merge_snapshots` folds any number of snapshots into one
  registry with deterministic semantics — counters and gauges add,
  fixed-bucket histograms add element-wise (the buckets were fixed at
  registration, so addition is exact) and pool their retained samples.
  Shape conflicts (same name, different kind/labels/buckets) raise
  instead of guessing;
* :func:`assert_families` is the pre-registration self-check: the
  serving stack declares its ``serve_*``/``shard_*`` families up front,
  and a renamed or re-shaped metric fails fast at startup instead of
  silently exporting an empty family forever;
* :func:`histogram_quantile` estimates p50/p99 from cumulative bucket
  counts (PromQL-style linear interpolation) for histograms that do
  not retain samples — the unbounded serving-path histograms;
* :func:`parse_prometheus_text` reads the text exposition format back
  into ``(name, labels) -> value`` samples, inverting the exporter's
  escaping — the CI scrape assertions and the escaping round-trip
  test both stand on it.

The central determinism property, pinned by tests: **merging N worker
snapshots produces a registry whose** ``digest()`` **equals the
single-process registry that observed the same events** — aggregation
is a pure fold, independent of how work was sharded.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _GaugeSeries,
    _HistogramSeries,
)

__all__ = [
    "AGG_SCHEMA",
    "snapshot_registry",
    "merge_snapshots",
    "merge_into",
    "assert_families",
    "histogram_quantile",
    "parse_prometheus_text",
    "sum_family",
]

#: Schema tag carried by every registry snapshot document.
AGG_SCHEMA = "repro.obs.metrics/v1"


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------


def snapshot_registry(
    registry: MetricsRegistry, seq: int = 0, source: str = ""
) -> Dict[str, object]:
    """Serialise a registry into a JSON-safe snapshot document.

    ``seq`` is the publisher's monotonic snapshot counter: a receiver
    holding several snapshots from one ``source`` keeps the one with
    the highest ``seq`` (snapshots are *state*, not deltas — summing
    two snapshots of the same worker would double-count).
    """
    metrics: List[Dict[str, object]] = []
    for metric in registry.collect():
        doc: Dict[str, object] = {
            "name": metric.name,
            "kind": metric.kind,
            "help": metric.help,
            "labelnames": list(metric.labelnames),
        }
        if isinstance(metric, Histogram):
            doc["buckets"] = list(metric.buckets)
            doc["keep_samples"] = metric.keep_samples
        series_docs: List[Dict[str, object]] = []
        for labelvalues, series in metric.series():
            sdoc: Dict[str, object] = {"labels": list(labelvalues)}
            if isinstance(series, _HistogramSeries):
                sdoc["bucket_counts"] = list(series.bucket_counts)
                sdoc["count"] = series.count
                sdoc["sum"] = series.sum
                if series.keep_samples:
                    sdoc["samples"] = list(series.samples)
            else:
                sdoc["value"] = series.value
            series_docs.append(sdoc)
        doc["series"] = series_docs
        metrics.append(doc)
    return {"v": AGG_SCHEMA, "seq": int(seq), "source": source, "metrics": metrics}


def _check_snapshot(doc: Mapping[str, object]) -> Sequence[Mapping[str, object]]:
    tag = doc.get("v")
    if tag != AGG_SCHEMA:
        raise ValueError(f"expected snapshot schema {AGG_SCHEMA!r}, got {tag!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, (list, tuple)):
        raise ValueError("snapshot has no metrics list")
    return metrics


def merge_into(registry: MetricsRegistry, doc: Mapping[str, object]) -> None:
    """Fold one snapshot into ``registry`` (adding, never replacing).

    Registration is idempotent, so shape conflicts between the snapshot
    and what ``registry`` already holds raise :class:`ValueError` — the
    same no-silent-drift rule the registry enforces locally.
    """
    for mdoc in _check_snapshot(doc):
        name = str(mdoc["name"])
        kind = str(mdoc["kind"])
        help_ = str(mdoc.get("help", ""))
        labelnames = tuple(str(n) for n in mdoc.get("labelnames", ()))
        if kind == "counter":
            metric = registry.counter(name, help_, labelnames)
        elif kind == "gauge":
            metric = registry.gauge(name, help_, labelnames)
        elif kind == "histogram":
            metric = registry.histogram(
                name,
                help_,
                labelnames,
                buckets=mdoc["buckets"],
                keep_samples=bool(mdoc.get("keep_samples", True)),
            )
        else:
            raise ValueError(f"snapshot metric {name!r} has unknown kind {kind!r}")
        for sdoc in mdoc.get("series", ()):
            labels = dict(zip(labelnames, (str(v) for v in sdoc["labels"])))
            series = metric.labels(**labels)
            if kind == "counter":
                series.inc(float(sdoc["value"]))
            elif kind == "gauge":
                _merge_gauge(series, float(sdoc["value"]))
            else:
                _merge_histogram_series(series, sdoc, name)


def _merge_gauge(series: _GaugeSeries, value: float) -> None:
    # Gauges add under merge: every cluster gauge in this codebase is a
    # partition count (sessions per worker, groups per worker), where
    # the cluster-wide value is the sum of the shards' values.
    series.inc(value)


def _merge_histogram_series(
    series: _HistogramSeries, sdoc: Mapping[str, object], name: str
) -> None:
    counts = [int(c) for c in sdoc["bucket_counts"]]
    if len(counts) != len(series.bucket_counts):
        raise ValueError(
            f"snapshot histogram {name!r} has {len(counts)} buckets, "
            f"registry has {len(series.bucket_counts)}"
        )
    with series._lock:
        for i, c in enumerate(counts):
            series.bucket_counts[i] += c
        series.count += int(sdoc["count"])
        series.sum += float(sdoc["sum"])
        if series.keep_samples and "samples" in sdoc:
            series.samples.extend(float(v) for v in sdoc["samples"])
            # Pooled samples arrive in shipment order, which depends on
            # how work was sharded; sorting restores a canonical order
            # so the merged registry is bit-equal across worker counts.
            series.samples.sort()


def merge_snapshots(
    snapshots: Iterable[Mapping[str, object]],
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold snapshots into one registry (a fresh one unless ``into``).

    Deterministic: the result's ``digest()`` depends only on the
    multiset of snapshots, not their order (addition commutes and
    pooled samples are re-sorted).
    """
    registry = into if into is not None else MetricsRegistry()
    for doc in snapshots:
        merge_into(registry, doc)
    return registry


# ----------------------------------------------------------------------
# family self-check
# ----------------------------------------------------------------------


def assert_families(
    registry: MetricsRegistry,
    families: Mapping[str, Tuple[str, Tuple[str, ...]]],
) -> None:
    """Check that every declared family exists with the declared shape.

    ``families`` maps metric name -> ``(kind, labelnames)``. A missing
    name (someone renamed the metric at the observation site without
    updating the declaration) or a shape mismatch raises
    :class:`ValueError` at startup, instead of a dashboard quietly
    reading an empty family for a quarter.
    """
    present = {m.name: m for m in registry.collect()}
    problems: List[str] = []
    for name in sorted(families):
        kind, labelnames = families[name]
        metric = present.get(name)
        if metric is None:
            problems.append(f"{name}: declared but never registered")
        elif metric.kind != kind:
            problems.append(f"{name}: declared {kind}, registered {metric.kind}")
        elif metric.labelnames != tuple(labelnames):
            problems.append(
                f"{name}: declared labels {tuple(labelnames)}, "
                f"registered {metric.labelnames}"
            )
    if problems:
        raise ValueError(
            "metric family self-check failed:\n  " + "\n  ".join(problems)
        )


# ----------------------------------------------------------------------
# bucket-interpolated quantiles
# ----------------------------------------------------------------------


def histogram_quantile(
    bounds: Sequence[float], cumulative: Sequence[int], q: float
) -> float:
    """PromQL-style quantile estimate from cumulative bucket counts.

    ``bounds`` are the finite upper bounds (the implicit ``+Inf``
    bucket is ``cumulative[-1]``); ``q`` is a percentile in [0, 100]
    to match :meth:`Histogram.percentile`. Linear interpolation within
    the target bucket; observations beyond the last finite bound clamp
    to it (their true magnitude is unknowable from buckets alone).
    Returns 0.0 for an empty histogram.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    if len(cumulative) != len(bounds) + 1:
        raise ValueError(
            f"{len(bounds)} bounds need {len(bounds) + 1} cumulative counts, "
            f"got {len(cumulative)}"
        )
    total = cumulative[-1]
    if total == 0:
        return 0.0
    rank = (q / 100.0) * total
    for i, bound in enumerate(bounds):
        if cumulative[i] >= rank:
            lower = bounds[i - 1] if i > 0 else 0.0
            below = cumulative[i - 1] if i > 0 else 0
            in_bucket = cumulative[i] - below
            if in_bucket == 0:  # pragma: no cover - rank lands exactly on below
                return bound
            return lower + (bound - lower) * (rank - below) / in_bucket
    return float(bounds[-1])


# ----------------------------------------------------------------------
# Prometheus text parsing (the exporter's inverse)
# ----------------------------------------------------------------------


def _unescape_label_value(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == '"':
                out.append('"')
            elif nxt == "n":
                out.append("\n")
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _parse_labels(text: str) -> Tuple[Tuple[str, str], ...]:
    """Parse ``name="value",...`` respecting escapes inside quotes."""
    pairs: List[Tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip()
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value near {text[eq:]!r}")
        j = eq + 2
        raw: List[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                raw.append(text[j : j + 2])
                j += 2
            else:
                raw.append(text[j])
                j += 1
        pairs.append((name, _unescape_label_value("".join(raw))))
        i = j + 1
        if i < len(text) and text[i] == ",":
            i += 1
    return tuple(pairs)


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse exposition-format text into ``(name, labels) -> value``.

    Labels come back unescaped and sorted by label name, so a sample
    rendered by :func:`~repro.obs.exporters.prometheus_text` and parsed
    here round-trips exactly (the escaping property test). Comment and
    blank lines are skipped.

    Raises:
        ValueError: on a malformed sample line.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if "{" in line:
                name = line[: line.index("{")]
                close = line.rindex("}")
                labels = _parse_labels(line[line.index("{") + 1 : close])
                value_text = line[close + 1 :].strip()
            else:
                name, value_text = line.rsplit(None, 1)
                labels = ()
            samples[(name, tuple(sorted(labels)))] = _parse_value(value_text)
        except (ValueError, IndexError) as error:
            raise ValueError(f"line {lineno + 1}: bad sample {line!r}") from error
    return samples


def sum_family(
    samples: Mapping[Tuple[str, Tuple[Tuple[str, str], ...]], float],
    name: str,
) -> float:
    """Sum every series of one family in a parsed scrape.

    The CI drill assertion: ``sum_family(parse_prometheus_text(body),
    "serve_verdicts_total") == 120``.
    """
    return sum(v for (n, _), v in samples.items() if n == name)
