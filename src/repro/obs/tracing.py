"""Distributed tracing: spans that survive process boundaries.

One monitoring round that crosses the wire touches up to three
processes — the reader client, the shard gateway, and the worker that
owns the group — and each of them holds part of the round's latency
story. This module gives them a shared span model with the same
determinism contract the rest of ``repro.obs`` keeps:

* **deterministic identity** — a round's ``trace_id`` is a pure
  function of ``(group, round)``, and every span's ``span_id`` is a
  pure function of ``(trace_id, parent, name)``. Two runs of the same
  seeded scenario produce the same ids whatever the worker count, so
  a digest over the merged trace is a regression artifact, not noise;
* **hop-ordered causality** — the wire envelope carries ``(trace_id,
  parent span, hop)``; each process records its span with ``hop`` one
  past its parent's, so the merged trace sorts causally without any
  clock agreement between processes;
* **wall time on the side** — spans record ``wall_ns_start`` /
  ``wall_ns_end`` for humans (the ``repro obs tail`` view), but the
  digest projection excludes them, along with the process identity
  (``process``, ``host_fields``) that legitimately differs between
  1-worker and 4-worker deployments.

Each process writes its spans to its own JSONL file (or keeps them in
memory); :func:`merge_spans` stitches the per-process files into one
causal trace, de-duplicating on ``(trace_id, span_id)`` so a worker
that died after persisting its verdict — whose span the gateway then
served from the snapshot — still contributes exactly one span.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "TRACE_SCHEMA",
    "Span",
    "SpanContext",
    "Tracer",
    "trace_id_for",
    "derive_span_id",
    "load_span_files",
    "merge_spans",
    "span_tree_digest",
    "write_spans_jsonl",
    "format_trace_tree",
]

#: Schema tag carried by every serialised span.
TRACE_SCHEMA = "repro.obs.trace/v1"

#: Hex digits in a trace id / span id.
_TRACE_ID_BYTES = 12
_SPAN_ID_BYTES = 8


def trace_id_for(group: str, round_index: int, namespace: str = "") -> str:
    """The deterministic trace id of one ``(group, round)`` pair.

    ``namespace`` distinguishes deliberately parallel universes (two
    loadgen campaigns against one service); within one campaign the
    default empty namespace keeps ids equal across runs and worker
    counts.
    """
    payload = f"{namespace}\x00{group}\x00{int(round_index)}".encode()
    return hashlib.blake2b(payload, digest_size=_TRACE_ID_BYTES).hexdigest()


def derive_span_id(trace_id: str, name: str, parent_id: str) -> str:
    """A span's id as a pure function of its causal position."""
    payload = f"{trace_id}\x00{parent_id}\x00{name}".encode()
    return hashlib.blake2b(payload, digest_size=_SPAN_ID_BYTES).hexdigest()


@dataclass(frozen=True)
class SpanContext:
    """What crosses the wire: enough to parent the next hop's span."""

    trace_id: str
    span_id: str
    hop: int = 0

    def to_wire(self) -> Dict[str, object]:
        """The ``trace`` envelope field of a ``repro.serve/v1`` frame."""
        return {"id": self.trace_id, "span": self.span_id, "hop": int(self.hop)}

    @classmethod
    def from_wire(cls, doc: Optional[Mapping[str, object]]) -> Optional["SpanContext"]:
        """Parse an envelope; ``None`` (or an absent field) ⇒ untraced."""
        if doc is None:
            return None
        return cls(
            trace_id=str(doc["id"]),
            span_id=str(doc["span"]),
            hop=int(doc["hop"]),
        )


@dataclass(frozen=True)
class Span:
    """One process's share of one traced round.

    Attributes:
        trace_id: the round's trace (shared by every hop).
        span_id: this span, derived via :func:`derive_span_id`.
        parent_id: the upstream hop's span id ("" for the root).
        name: stable span name ("reader.round", "gateway.round",
            "serve.round").
        hop: 0 at the root, +1 per process boundary; the causal sort
            key inside one trace.
        group / round: the monitored group and wire round index.
        fields: JSON-safe deterministic payload (verdict, frame size,
            simulated air time...). Included in the digest.
        process: the recording process's role label ("reader",
            "gateway", "worker:w01"). Excluded from the digest — a
            4-worker cluster names different workers than a 1-worker
            cluster for the *same* causal trace.
        host_fields: process-/host-specific extras (pids, retry counts,
            wall latencies). Excluded from the digest.
        wall_ns_start / wall_ns_end: host monotonic clock. Excluded.
    """

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    hop: int
    group: str
    round: int
    fields: Mapping[str, object] = field(default_factory=dict)
    process: str = ""
    host_fields: Mapping[str, object] = field(default_factory=dict)
    wall_ns_start: int = 0
    wall_ns_end: int = 0

    @property
    def context(self) -> SpanContext:
        """The context downstream hops should parent to."""
        return SpanContext(self.trace_id, self.span_id, self.hop + 1)

    def deterministic_dict(self) -> Dict[str, object]:
        """The digest-relevant projection (no wall clock, no process)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "hop": self.hop,
            "group": self.group,
            "round": self.round,
            "fields": dict(self.fields),
        }

    def to_dict(self) -> Dict[str, object]:
        doc = self.deterministic_dict()
        doc["v"] = TRACE_SCHEMA
        doc["process"] = self.process
        doc["host_fields"] = dict(self.host_fields)
        doc["wall_ns_start"] = self.wall_ns_start
        doc["wall_ns_end"] = self.wall_ns_end
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "Span":
        """Parse one serialised span.

        Raises:
            ValueError: on a missing field or a wrong schema tag.
        """
        tag = doc.get("v", TRACE_SCHEMA)
        if tag != TRACE_SCHEMA:
            raise ValueError(f"expected span schema {TRACE_SCHEMA!r}, got {tag!r}")
        try:
            return cls(
                trace_id=str(doc["trace_id"]),
                span_id=str(doc["span_id"]),
                parent_id=str(doc["parent_id"]),
                name=str(doc["name"]),
                hop=int(doc["hop"]),
                group=str(doc["group"]),
                round=int(doc["round"]),
                fields=dict(doc.get("fields", {})),
                process=str(doc.get("process", "")),
                host_fields=dict(doc.get("host_fields", {})),
                wall_ns_start=int(doc.get("wall_ns_start", 0)),
                wall_ns_end=int(doc.get("wall_ns_end", 0)),
            )
        except KeyError as error:
            raise ValueError(f"malformed span: missing {error}") from error


class Tracer:
    """One process's span sink: in memory, optionally mirrored to disk.

    The disk mirror appends each span as one JSON line the moment it is
    recorded — a worker that is SIGKILLed mid-campaign leaves behind
    every span it completed, which is exactly what the failover drill
    merges afterwards.

    Thread-safe; recording is append-only.
    """

    def __init__(self, process: str = "", path: Optional[str] = None):
        self.process = process
        self.path = path
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        if path is not None:
            # Truncate a stale file from a previous run of this role.
            with open(path, "w"):
                pass

    def span(
        self,
        name: str,
        group: str,
        round_index: int,
        parent: Optional[SpanContext] = None,
        trace_id: Optional[str] = None,
        wall_ns_start: int = 0,
        host_fields: Optional[Mapping[str, object]] = None,
        **fields,
    ) -> Span:
        """Record one finished span and return it.

        Roots pass ``trace_id`` (usually :func:`trace_id_for`) and no
        ``parent``; downstream hops pass the ``parent`` context decoded
        from the wire envelope.
        """
        if parent is not None:
            tid, parent_id, hop = parent.trace_id, parent.span_id, parent.hop
        else:
            if trace_id is None:
                raise ValueError("a root span needs an explicit trace_id")
            tid, parent_id, hop = trace_id, "", 0
        now = time.monotonic_ns()
        span = Span(
            trace_id=tid,
            span_id=derive_span_id(tid, name, parent_id),
            parent_id=parent_id,
            name=name,
            hop=hop,
            group=group,
            round=int(round_index),
            fields=dict(fields),
            process=self.process,
            host_fields=dict(host_fields or {}),
            wall_ns_start=wall_ns_start or now,
            wall_ns_end=now,
        )
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._spans.append(span)
            if self.path is not None:
                with open(self.path, "a") as fh:
                    fh.write(line + "\n")
        return span

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# ----------------------------------------------------------------------
# merging and digesting
# ----------------------------------------------------------------------


def _span_sort_key(span: Span) -> Tuple:
    return (span.trace_id, span.hop, span.parent_id, span.name, span.span_id)


def load_span_files(paths: Sequence[str]) -> List[Span]:
    """Parse per-process span JSONL files (missing files are skipped —
    a worker that never traced a round simply contributes nothing).

    A file's *final* line failing to parse as JSON is tolerated: spans
    are appended one line at a time, so a SIGKILL (the failover drill's
    whole point) can tear at most the trailing append. Anywhere else,
    or a line that is valid JSON but not a valid span, still raises.

    Raises:
        ValueError: on a malformed span line, with file:line context.
    """
    spans: List[Span] = []
    for path in paths:
        if not os.path.exists(path):
            continue
        with open(path) as fh:
            lines = fh.read().splitlines()
        for lineno, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as error:
                if lineno == len(lines) - 1:
                    continue  # torn trailing append of a killed process
                raise ValueError(
                    f"{path}:{lineno + 1}: bad span line ({error})"
                ) from error
            try:
                spans.append(Span.from_dict(doc))
            except ValueError as error:
                raise ValueError(
                    f"{path}:{lineno + 1}: bad span line ({error})"
                ) from error
    return spans


def merge_spans(*sources: Iterable[Span]) -> List[Span]:
    """Stitch per-process span streams into one causal trace.

    Output order is canonical — ``(trace_id, hop, parent, name,
    span_id)`` — which is a pure function of the spans' deterministic
    identity, so the merge is invariant to the number of source files
    and the interleaving within them. Duplicate ``(trace_id,
    span_id)`` pairs (a dead worker's span re-served from its
    snapshot) keep the first occurrence in canonical order.
    """
    seen: Dict[Tuple[str, str], Span] = {}
    for source in sources:
        for span in source:
            key = (span.trace_id, span.span_id)
            if key not in seen:
                seen[key] = span
    return sorted(seen.values(), key=_span_sort_key)


def span_tree_digest(spans: Iterable[Span]) -> str:
    """SHA-256 over the merged trace's deterministic projection.

    Equal across runs, ``--jobs`` settings and worker counts for the
    same seeded scenario — the acceptance property the distributed
    tracing tests pin.
    """
    merged = merge_spans(spans)
    payload = "\n".join(
        json.dumps(s.deterministic_dict(), sort_keys=True) for s in merged
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def write_spans_jsonl(spans: Iterable[Span], path: str) -> str:
    """Write a merged trace as JSONL; returns its tree digest."""
    merged = merge_spans(spans)
    with open(path, "w") as fh:
        for span in merged:
            fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return span_tree_digest(merged)


def format_trace_tree(spans: Iterable[Span], max_traces: Optional[int] = None) -> str:
    """Human-readable tree, one indented line per span.

    The ``repro obs tail`` rendering: traces in canonical order, spans
    indented by hop, with the wall latency each process saw.
    """
    merged = merge_spans(spans)
    by_trace: Dict[str, List[Span]] = {}
    for span in merged:
        by_trace.setdefault(span.trace_id, []).append(span)
    lines: List[str] = []
    for count, (trace_id, members) in enumerate(sorted(by_trace.items())):
        if max_traces is not None and count >= max_traces:
            lines.append(f"... {len(by_trace) - max_traces} more trace(s)")
            break
        head = members[0]
        lines.append(f"trace {trace_id}  group={head.group} round={head.round}")
        for span in members:
            wall_ms = (span.wall_ns_end - span.wall_ns_start) / 1e6
            detail = " ".join(
                f"{k}={v}" for k, v in sorted(span.fields.items())
            )
            process = f" [{span.process}]" if span.process else ""
            lines.append(
                f"  {'  ' * span.hop}{span.name}{process} "
                f"{wall_ms:.2f} ms{(' ' + detail) if detail else ''}"
            )
    return "\n".join(lines)
