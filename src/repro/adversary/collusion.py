"""Colluding-reader attacks (Sec. 5.1 and 5.4).

The strong adversary: a dishonest reader R1 keeps the remaining set
``s1``, hands the stolen ``s2`` to a collaborator R2, and the pair try
to assemble a bitstring indistinguishable from an intact scan.

* Against **TRP** the attack always succeeds (Alg. 4): both scan under
  the same ``(f, r)`` and OR the bitstrings — the hash is position-
  independent, so the merge equals the intact set's bitstring.
  :func:`attack_trp_with_collusion` demonstrates this on real channels.
* Against **UTRP** the re-seed cascade makes every R1-empty slot a
  mandatory synchronisation with R2, and the server's timer caps those
  at ``c``. The paper's optimal adversary strategy (Sec. 5.4) — spend
  the budget on the first ``c`` empty slots, then finish solo with
  ``s1`` — is implemented twice: :class:`ColludingUtrpPair` drives real
  tag/channel machinery (tests, examples), and
  :func:`simulate_colluding_utrp_scan` is the vectorised equivalent the
  Fig. 7 Monte Carlo uses (cross-validated in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..rfid.bitstring import bitwise_or, empty_bitstring
from ..rfid.channel import SlottedChannel
from ..rfid.hashing import slots_for_tags_with_counters
from ..rfid.reader import ScanResult, TrustedReader

__all__ = [
    "attack_trp_with_collusion",
    "CollusionScan",
    "simulate_colluding_utrp_scan",
    "ColludingUtrpPair",
]

_INF = np.iinfo(np.int64).max


def attack_trp_with_collusion(
    frame_size: int,
    seed: int,
    remaining_channel: SlottedChannel,
    stolen_channel: SlottedChannel,
) -> ScanResult:
    """Alg. 4 — defeat TRP by scanning ``s1`` and ``s2`` separately.

    R1 and R2 run the honest TRP scan on their halves under the same
    ``(f, r)`` and OR the bitstrings. Because a TRP tag's slot depends
    only on ``(id, r, f)``, the merged bitstring is exactly what the
    intact set would produce — the vulnerability motivating UTRP.
    """
    r1 = TrustedReader("dishonest-R1").scan_trp(remaining_channel, frame_size, seed)
    r2 = TrustedReader("collaborator-R2").scan_trp(stolen_channel, frame_size, seed)
    merged = bitwise_or(r1.bitstring, r2.bitstring)
    return ScanResult(
        bitstring=merged,
        slots_used=r1.slots_used + r2.slots_used,
        seeds_used=r1.seeds_used + r2.seeds_used,
    )


@dataclass
class CollusionScan:
    """What the colluding pair hand the server after a UTRP attempt.

    Attributes:
        bitstring: the forged proof ``b̂s``.
        comms_used: synchronisations actually spent (``<= budget``).
        went_solo: True if the budget ran out and R1 finished alone.
        solo_from_slot: global slot where synchronisation stopped
            (``frame_size`` when the whole scan stayed synchronised).
    """

    bitstring: np.ndarray
    comms_used: int
    went_solo: bool
    solo_from_slot: int


def simulate_colluding_utrp_scan(
    tag_ids: np.ndarray,
    counters: np.ndarray,
    stolen_mask: np.ndarray,
    frame_size: int,
    seeds: Sequence[int],
    budget: int,
) -> CollusionScan:
    """Vectorised optimal collusion against UTRP (Sec. 5.4 strategy).

    Walks the same cascade as the verifier's replay, with two twists:

    * every slot R1 (holding the non-stolen tags) finds empty costs one
      synchronisation with R2 — R1 cannot otherwise know whether a
      stolen tag claimed it;
    * when the budget is exhausted R1 continues alone: stolen-tag
      replies are missed, only R1's own replies trigger re-seeds, and
      only the kept tags' counters keep ticking.

    Args:
        tag_ids: the *full* original set, in the server's registration
            order (so the result aligns with the verifier prediction).
        counters: mirrored counters before the scan, same order.
        stolen_mask: boolean; True entries are with the collaborator.
        frame_size: ``f`` from the server's challenge.
        seeds: the server's pre-committed ``r_1..r_f``.
        budget: ``c`` — synchronisations the timer allows.

    Raises:
        ValueError: on shape mismatches or an undersized seed list.
    """
    ids = np.asarray(tag_ids, dtype=np.uint64)
    cts = np.asarray(counters, dtype=np.int64).copy()
    stolen = np.asarray(stolen_mask, dtype=bool)
    if not (ids.shape == cts.shape == stolen.shape):
        raise ValueError("tag_ids, counters and stolen_mask must align")
    if len(seeds) < frame_size:
        raise ValueError(f"need {frame_size} seeds, got {len(seeds)}")
    if budget < 0:
        raise ValueError("budget must be >= 0")

    bs = empty_bitstring(frame_size)
    active = np.ones(ids.shape, dtype=bool)
    budget_left = budget
    solo = False
    solo_from = frame_size

    def rehash(seed: int, sub_frame: int, mask: np.ndarray) -> np.ndarray:
        full = np.full(ids.shape, _INF, dtype=np.int64)
        if mask.any():
            full[mask] = slots_for_tags_with_counters(
                ids[mask], seed, sub_frame, cts[mask]
            )
        return full

    # Both readers broadcast (f, r_1) to their halves in lockstep.
    cts += 1
    seeds_used = 1
    offset = 0
    cursor = 0  # local slot R1 has walked up to in the current sub-frame
    slots = rehash(int(seeds[0]), frame_size, active)

    while offset + cursor < frame_size:
        kept_active = active & ~stolen
        ahead1 = slots[kept_active & (slots >= cursor)] if kept_active.any() else slots[:0]
        next1 = int(ahead1.min()) if ahead1.size else _INF
        if not solo:
            stolen_active = active & stolen
            ahead2 = (
                slots[stolen_active & (slots >= cursor)]
                if stolen_active.any()
                else slots[:0]
            )
            next2 = int(ahead2.min()) if ahead2.size else _INF
            event = min(next1, next2)
            if event == _INF:
                # Nothing left to reply anywhere: the remaining slots
                # are genuinely empty, so reporting zeros is correct
                # whether or not R1 can still afford to double-check.
                break
            comms = (event - cursor) + (1 if next2 < next1 else 0)
            if budget_left < comms:
                # R1 verifies as many empties as it can afford, then
                # carries on alone from that slot. The collaborator's
                # information is lost from here on.
                cursor += budget_left
                budget_left = 0
                solo = True
                solo_from = offset + cursor
                active &= ~stolen  # R2's tags are never observed again
                continue
            budget_left -= comms
        else:
            event = next1
            if event == _INF:
                break

        bs[offset + event] = 1
        repliers = active & (slots == event)
        active &= ~repliers
        sub_frame = frame_size - (offset + event + 1)
        if sub_frame <= 0:
            break
        seeds_used += 1
        if solo:
            cts[~stolen] += 1  # only R1's broadcast is heard
        else:
            cts += 1  # lockstep re-seed on both sides
        offset = offset + event + 1
        cursor = 0
        slots = rehash(int(seeds[seeds_used - 1]), sub_frame, active)

    return CollusionScan(
        bitstring=bs,
        comms_used=budget - budget_left,
        went_solo=solo,
        solo_from_slot=solo_from,
    )


class ColludingUtrpPair:
    """Channel-faithful colluding readers for UTRP.

    Drives two real :class:`SlottedChannel` populations (the shelf and
    the loot bag) slot by slot with the same strategy as
    :func:`simulate_colluding_utrp_scan`: synchronise on R1-empty slots
    while the budget lasts, then run solo. Used by the protocol-level
    tests and the attack-demo example; the vectorised function is the
    Monte Carlo fast path.
    """

    def __init__(
        self,
        remaining_channel: SlottedChannel,
        stolen_channel: SlottedChannel,
        budget: int,
    ):
        if budget < 0:
            raise ValueError("budget must be >= 0")
        self._s1 = remaining_channel
        self._s2 = stolen_channel
        self.budget = budget

    def scan(self, frame_size: int, seeds: Sequence[int]) -> CollusionScan:
        """Execute the attack for one server challenge.

        Raises:
            ValueError: if fewer than ``frame_size`` seeds are given.
        """
        if len(seeds) < frame_size:
            raise ValueError(f"need {frame_size} seeds, got {len(seeds)}")
        self._s1.power_cycle()
        self._s2.power_cycle()
        bs = empty_bitstring(frame_size)
        budget_left = self.budget
        solo = False
        solo_from = frame_size

        seed_index = 0
        self._s1.broadcast_seed(frame_size, seeds[seed_index])
        self._s2.broadcast_seed(frame_size, seeds[seed_index])
        seed_index += 1
        sub_frame = frame_size

        for sn in range(frame_size):
            local = sn - (frame_size - sub_frame)
            got1 = self._s1.poll_slot(local).outcome.occupied
            got2 = False
            if not solo:
                if got1:
                    # R1's own reply: bit is 1 and a re-seed is due no
                    # matter what R2 saw; R2 polls its slot too (its
                    # tags must consume the slot) but no waiting occurs.
                    got2 = self._s2.poll_slot(local).outcome.occupied
                elif budget_left > 0:
                    budget_left -= 1
                    got2 = self._s2.poll_slot(local).outcome.occupied
                else:
                    solo = True
                    solo_from = sn
            occupied = got1 or (got2 and not solo)
            if occupied:
                bs[sn] = 1
                sub_frame = frame_size - (sn + 1)
                if sub_frame > 0:
                    self._s1.broadcast_seed(sub_frame, seeds[seed_index])
                    if not solo:
                        self._s2.broadcast_seed(sub_frame, seeds[seed_index])
                    seed_index += 1
        return CollusionScan(
            bitstring=bs,
            comms_used=self.budget - budget_left,
            went_solo=solo,
            solo_from_slot=solo_from,
        )
