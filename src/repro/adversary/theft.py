"""Theft scenarios: the paper's basic adversary (Sec. 3).

The adversary physically removes tags from the set; stolen tags leave
the reader's range and never answer queries. The paper always evaluates
the *worst case* theft of exactly ``m + 1`` tags — any larger theft is
easier to detect (Lemma 1) — and that convention is captured here so
experiments can't accidentally test an easier case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..rfid.population import TagPopulation

__all__ = ["TheftOutcome", "steal_random_tags", "worst_case_theft"]


@dataclass
class TheftOutcome:
    """Result of a theft against a population.

    Attributes:
        remaining: the tags still on the shelf (``s1``).
        stolen: the removed tags (``s2``), now out of reader range.
    """

    remaining: TagPopulation
    stolen: TagPopulation

    @property
    def stolen_count(self) -> int:
        return len(self.stolen)


def steal_random_tags(
    population: TagPopulation,
    count: int,
    rng: Optional[np.random.Generator] = None,
) -> TheftOutcome:
    """Remove ``count`` uniformly random tags from the population.

    Mutates ``population`` in place (the tags are physically gone) and
    returns both halves.

    Raises:
        ValueError: if ``count`` exceeds the population size.
    """
    stolen = population.remove_random(count, rng)
    return TheftOutcome(remaining=population, stolen=stolen)


def worst_case_theft(
    population: TagPopulation,
    tolerance: int,
    rng: Optional[np.random.Generator] = None,
) -> TheftOutcome:
    """Steal exactly ``m + 1`` tags — the hardest detectable theft.

    Raises:
        ValueError: if the population cannot lose ``tolerance + 1``
            tags.
    """
    return steal_random_tags(population, tolerance + 1, rng)
