"""Collusion synchronisation strategies — is the paper's optimal?

Sec. 5.4 asserts the colluders' best strategy is to spend the whole
budget on the *first* ``c`` empty slots R1 encounters, then finish
solo. This module makes that claim testable: a
:class:`SyncStrategy` decides, at every R1-empty slot, whether to spend
one synchronisation, and :func:`simulate_strategy_collusion` plays any
strategy against the full cascade.

Cost model (the paper's): learning R2's outcome for a slot costs one
synchronisation; R1→R2 notifications (re-seed announcements after R1's
own replies, or after a paid reveal) ride along for free — R1 "can
continue re-seeding and scanning ... without waiting". A *skipped*
R1-empty slot is recorded as 0 and triggers no re-seed; if a stolen tag
actually replied there, the server's cascade re-seeds while the
colluders' does not, and the forgery unravels.

The expected outcome — confirmed by the Abl. I bench — is that eager
spending dominates: every skipped early empty slot is a chance for the
cascade to diverge, and unspent budget is worthless once it has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..rfid.bitstring import empty_bitstring
from ..rfid.hashing import slots_for_tags_with_counters
from .collusion import CollusionScan

__all__ = [
    "SyncContext",
    "SyncStrategy",
    "EagerStrategy",
    "SpreadStrategy",
    "ReserveStrategy",
    "RandomStrategy",
    "simulate_strategy_collusion",
]

_INF = np.iinfo(np.int64).max


@dataclass(frozen=True)
class SyncContext:
    """What a strategy knows when deciding to spend a sync.

    Attributes:
        global_slot: position in the frame (0-based).
        frame_size: ``f``.
        budget_left: synchronisations still available.
        empties_seen: R1-empty slots encountered so far (spent or not).
    """

    global_slot: int
    frame_size: int
    budget_left: int
    empties_seen: int


class SyncStrategy:
    """Decides whether to pay for R2's outcome at an R1-empty slot."""

    name = "abstract"

    def spend(self, ctx: SyncContext) -> bool:
        raise NotImplementedError


class EagerStrategy(SyncStrategy):
    """The paper's strategy: spend while any budget remains."""

    name = "eager (paper)"

    def spend(self, ctx: SyncContext) -> bool:
        return ctx.budget_left > 0


class SpreadStrategy(SyncStrategy):
    """Spend on every ``period``-th empty slot, rationing the budget."""

    name = "spread"

    def __init__(self, period: int):
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period
        self.name = f"spread (1 in {period})"

    def spend(self, ctx: SyncContext) -> bool:
        return ctx.budget_left > 0 and ctx.empties_seen % self.period == 0


class ReserveStrategy(SyncStrategy):
    """Hold back until the frame's tail, then spend everything.

    Rationale an adversary might try: late slots are sparser, so a
    sync there is more 'informative'. The cascade punishes the early
    silence instead.
    """

    name = "reserve-for-tail"

    def __init__(self, start_fraction: float = 0.5):
        if not 0.0 <= start_fraction < 1.0:
            raise ValueError("start_fraction must be in [0, 1)")
        self.start_fraction = start_fraction
        self.name = f"reserve (spend after {int(start_fraction * 100)}%)"

    def spend(self, ctx: SyncContext) -> bool:
        return (
            ctx.budget_left > 0
            and ctx.global_slot >= self.start_fraction * ctx.frame_size
        )


class RandomStrategy(SyncStrategy):
    """Flip a coin per empty slot (a strawman control)."""

    name = "random"

    def __init__(self, probability: float, rng: np.random.Generator):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self._rng = rng
        self.name = f"random (p={probability})"

    def spend(self, ctx: SyncContext) -> bool:
        return ctx.budget_left > 0 and self._rng.random() < self.probability


def simulate_strategy_collusion(
    tag_ids: np.ndarray,
    counters: np.ndarray,
    stolen_mask: np.ndarray,
    frame_size: int,
    seeds: Sequence[int],
    budget: int,
    strategy: SyncStrategy,
) -> CollusionScan:
    """Play a UTRP collusion with an arbitrary sync strategy.

    Walks the cascade slot by slot (strategies need per-slot context),
    with the lockstep semantics described in the module docstring. With
    :class:`EagerStrategy` this reproduces
    :func:`repro.adversary.collusion.simulate_colluding_utrp_scan`
    bit-for-bit (asserted in the test suite).

    Raises:
        ValueError: on shape mismatches or an undersized seed list.
    """
    ids = np.asarray(tag_ids, dtype=np.uint64)
    cts = np.asarray(counters, dtype=np.int64).copy()
    stolen = np.asarray(stolen_mask, dtype=bool)
    if not (ids.shape == cts.shape == stolen.shape):
        raise ValueError("tag_ids, counters and stolen_mask must align")
    if len(seeds) < frame_size:
        raise ValueError(f"need {frame_size} seeds, got {len(seeds)}")
    if budget < 0:
        raise ValueError("budget must be >= 0")

    bs = empty_bitstring(frame_size)
    active = np.ones(ids.shape, dtype=bool)
    kept = ~stolen
    budget_left = budget
    empties_seen = 0
    first_skip: Optional[int] = None

    def rehash(seed: int, sub_frame: int) -> np.ndarray:
        full = np.full(ids.shape, _INF, dtype=np.int64)
        if active.any():
            full[active] = slots_for_tags_with_counters(
                ids[active], seed, sub_frame, cts[active]
            )
        return full

    cts += 1
    seeds_used = 1
    offset = 0
    slots = rehash(int(seeds[0]), frame_size)

    global_slot = 0
    while global_slot < frame_size:
        local = global_slot - offset
        r1_reply = bool(np.any(active & kept & (slots == local)))
        r2_reply = bool(np.any(active & stolen & (slots == local)))
        reseed = False
        if r1_reply:
            bs[global_slot] = 1
            reseed = True
        else:
            empties_seen += 1
            ctx = SyncContext(
                global_slot=global_slot,
                frame_size=frame_size,
                budget_left=budget_left,
                empties_seen=empties_seen - 1,
            )
            if strategy.spend(ctx) and budget_left > 0:
                budget_left -= 1
                if r2_reply:
                    bs[global_slot] = 1
                    reseed = True
            elif first_skip is None:
                first_skip = global_slot
        # Lockstep polling: every tag in this slot transmitted and goes
        # silent whether or not anyone recorded it.
        repliers = active & (slots == local)
        active &= ~repliers
        global_slot += 1
        if reseed and global_slot < frame_size:
            sub_frame = frame_size - global_slot
            cts += 1
            seeds_used += 1
            offset = global_slot
            slots = rehash(int(seeds[seeds_used - 1]), sub_frame)
    return CollusionScan(
        bitstring=bs,
        comms_used=budget - budget_left,
        went_solo=budget_left == 0 or first_skip is not None,
        solo_from_slot=first_skip if first_skip is not None else frame_size,
    )
