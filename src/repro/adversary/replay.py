"""Replay attacks (Sec. 1 and Sec. 5.1).

The original *collect all* threat: a dishonest employee records the
tags' answers before the theft and replays them afterwards. Against a
server that reuses its challenge the replay is perfect; against fresh
per-scan seeds it only succeeds if the stale bitstring happens to equal
the fresh expectation — vanishingly unlikely, which is exactly the
paper's first counter-measure ("easily defeated by letting the server
issue a new (f, r) each time"). The ablation bench quantifies both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..rfid.channel import SlottedChannel
from ..rfid.reader import ScanResult, TrustedReader

__all__ = ["ReplayAttacker"]


@dataclass
class ReplayAttacker:
    """A dishonest reader that records honest scans and replays them.

    Usage: before the theft, call :meth:`record` while the set is
    intact; after the theft, :meth:`replay` answers the server from the
    recording instead of scanning.
    """

    _recordings: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict)

    def record(
        self, channel: SlottedChannel, frame_size: int, seed: int
    ) -> ScanResult:
        """Honestly scan the (still intact) set and keep the bitstring."""
        scan = TrustedReader("replay-recorder").scan_trp(channel, frame_size, seed)
        self._recordings[(frame_size, seed)] = scan.bitstring.copy()
        return scan

    @property
    def recorded_challenges(self) -> int:
        return len(self._recordings)

    def replay(self, frame_size: int, seed: int) -> Optional[ScanResult]:
        """Answer a challenge from the recordings.

        Exact replay when the server reused a recorded ``(f, r)``;
        otherwise the attacker's best effort is any recording with the
        right frame size (hoping the server doesn't notice). Returns
        ``None`` when nothing usable was recorded — the attacker must
        then fail the round outright.
        """
        exact = self._recordings.get((frame_size, seed))
        if exact is not None:
            return ScanResult(bitstring=exact.copy(), slots_used=0, seeds_used=0)
        for (f, _r), bs in self._recordings.items():
            if f == frame_size:
                return ScanResult(bitstring=bs.copy(), slots_used=0, seeds_used=0)
        return None
