"""Adversary models: theft, replay, and colluding readers."""

from .collusion import (
    CollusionScan,
    ColludingUtrpPair,
    attack_trp_with_collusion,
    simulate_colluding_utrp_scan,
)
from .replay import ReplayAttacker
from .strategies import (
    EagerStrategy,
    RandomStrategy,
    ReserveStrategy,
    SpreadStrategy,
    SyncContext,
    SyncStrategy,
    simulate_strategy_collusion,
)
from .theft import TheftOutcome, steal_random_tags, worst_case_theft

__all__ = [
    "CollusionScan",
    "ColludingUtrpPair",
    "attack_trp_with_collusion",
    "simulate_colluding_utrp_scan",
    "ReplayAttacker",
    "EagerStrategy",
    "RandomStrategy",
    "ReserveStrategy",
    "SpreadStrategy",
    "SyncContext",
    "SyncStrategy",
    "simulate_strategy_collusion",
    "TheftOutcome",
    "steal_random_tags",
    "worst_case_theft",
]
