"""The asyncio monitoring service: many groups, many reader sessions.

:class:`MonitoringService` hosts one
:class:`~repro.core.monitor.MonitoringServer` per tag group and speaks
``repro.serve/v1`` (:mod:`repro.serve.protocol`) to any number of
concurrent reader connections. The split of responsibilities mirrors
the paper's trust model exactly:

* the **service** owns everything secret or authoritative — the ID
  database, the seed issuer, the counter mirror, the verdict rule and
  the Alg. 5 timer;
* the **reader** (remote, possibly untrusted) owns the physical channel
  and returns only occupancy bitstrings.

Backpressure is explicit and three-layered:

* ``max_sessions`` — connections beyond the cap are answered with one
  ``ERROR server-busy`` frame and closed before a session starts;
* ``max_inflight`` — a service-wide semaphore bounds rounds that are
  simultaneously between CHALLENGE and VERDICT, whatever the session
  count;
* per-group locks — rounds on one group serialise, so seed issuance
  and counter commits stay atomic per round and two readers can never
  interleave half-verified scans of the same set.

Slow or hostile clients degrade *per session* (ERROR frames, deadline
verdicts, eventual eviction) and never crash the service; see
:mod:`repro.serve.session` for the state machine.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

import numpy as np

from ..core.monitor import MonitoringServer
from ..core.parameters import MonitorRequirement
from ..core.utrp import default_timer
from ..obs.agg import assert_families
from ..obs.metrics import DEFAULT_BUCKETS
from ..obs.tracing import SpanContext
from .session import ServeSession, SessionConfig

__all__ = [
    "HostedGroup",
    "MonitoringService",
    "SERVE_METRIC_FAMILIES",
    "BUDGET_BUCKETS",
    "register_serve_metrics",
]

#: Fixed buckets for the UTRP deadline-budget consumption ratio
#: (elapsed / timer). 1.0 is the Theorem-5 cliff; everything beyond it
#: is a late rejection.
BUDGET_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0, 5.0)

#: Every metric family the serving path emits, by declared shape.
#: :func:`register_serve_metrics` creates them up front and asserts the
#: shapes match, so renaming a metric at an observation site without
#: updating this table fails at service construction — not as a
#: forever-empty family on a dashboard.
SERVE_METRIC_FAMILIES = {
    "serve_sessions_total": ("counter", ("phase",)),
    "serve_sessions_refused_total": ("counter", ()),
    "serve_wire_negotiations_total": ("counter", ("version",)),
    "serve_frames_total": ("counter", ("direction", "type")),
    "serve_errors_total": ("counter", ("code",)),
    "serve_verdicts_total": ("counter", ("group", "verdict")),
    "serve_timeouts_total": ("counter", ()),
    "serve_late_rejections_total": ("counter", ()),
    "serve_round_latency_us": ("histogram", ()),
    "serve_deadline_budget_ratio": ("histogram", ()),
    "population_updates_total": ("counter", ("group", "op")),
    "population_epoch": ("gauge", ("group",)),
}


def register_serve_metrics(registry) -> None:
    """Pre-register the ``serve_*`` families and self-check the shapes.

    The SLO histograms observe unbounded round streams, so they do not
    retain samples — ``/slo`` quantiles come from bucket interpolation
    (:func:`repro.obs.agg.histogram_quantile`).

    Raises:
        ValueError: if a family is already registered with a drifted
            shape (the self-check the satellite task demands).
    """
    registry.counter("serve_sessions_total", "sessions by phase", ("phase",))
    # Unlabelled families materialise their default series immediately
    # (.labels() with no kwargs) so a scrape of a healthy service shows
    # an explicit 0, not a family with no samples.
    registry.counter(
        "serve_sessions_refused_total", "sessions refused at the cap"
    ).labels()
    registry.counter(
        "serve_wire_negotiations_total",
        "HELLO negotiations by chosen wire version",
        ("version",),
    )
    registry.counter(
        "serve_frames_total", "wire frames by type and direction",
        ("direction", "type"),
    )
    registry.counter("serve_errors_total", "protocol errors by code", ("code",))
    registry.counter(
        "serve_verdicts_total", "round verdicts by group and outcome",
        ("group", "verdict"),
    )
    registry.counter("serve_timeouts_total", "rounds lost to the deadline").labels()
    registry.counter(
        "serve_late_rejections_total",
        "UTRP rounds rejected late (Theorem 5 path)",
    ).labels()
    registry.histogram(
        "serve_round_latency_us",
        "round latency in simulated microseconds",
        buckets=DEFAULT_BUCKETS,
        keep_samples=False,
    ).labels()
    registry.histogram(
        "serve_deadline_budget_ratio",
        "fraction of the UTRP timer budget one round consumed",
        buckets=BUDGET_BUCKETS,
        keep_samples=False,
    ).labels()
    registry.counter(
        "population_updates_total",
        "applied membership deltas by group and op",
        ("group", "op"),
    )
    registry.gauge(
        "population_epoch",
        "current population epoch by group",
        ("group",),
    )
    assert_families(registry, SERVE_METRIC_FAMILIES)


class HostedGroup:
    """One tag group's server-side state inside the service.

    Attributes:
        name: wire-visible group label.
        monitor: the authoritative :class:`MonitoringServer`.
        lock: serialises rounds on this group.
        rounds_issued: challenges issued so far (the wire ``round``).
        reports: per-round reports, in issue order (tests and the
            examples read verdict history from here).
        timeouts: rounds that ended in a deadline expiry instead of a
            report. ``len(reports) + timeouts`` counts verdicts whose
            VERDICT frame has been flushed — an in-flight round counts
            toward neither, so pollers (the ``serve --rounds-limit``
            loop) never shut the service down under a live round.
    """

    def __init__(self, name: str, monitor: MonitoringServer):
        self.name = name
        self.monitor = monitor
        self.lock = asyncio.Lock()
        self.rounds_issued = 0
        self.reports: List[object] = []
        self.timeouts = 0

    @property
    def trp_frame_size(self) -> int:
        return self.monitor.trp_frame_size

    def utrp_plan(self) -> tuple:
        """``(frame_size, timer_us)`` for the next UTRP challenge.

        The timer comes from :func:`repro.core.utrp.default_timer`, the
        same helper the in-process path uses — a remote round is held
        to exactly the deadline an in-process round would be.
        """
        frame_size = self.monitor.utrp_frame_size
        timer_us = default_timer(
            frame_size,
            self.monitor.requirement.population,
            self.monitor.timing,
        )
        return frame_size, timer_us


class MonitoringService:
    """Hosts monitoring servers for many groups behind one listener."""

    def __init__(
        self,
        session_config: Optional[SessionConfig] = None,
        max_sessions: int = 256,
        max_inflight: int = 64,
        obs=None,
        tracer=None,
        wire_versions=None,
    ):
        """Args:
            session_config: per-connection behaviour (timeouts, timer
                enforcement, clock); one config is shared by every
                session.
            max_sessions: concurrent connection cap; excess connections
                receive ``ERROR server-busy`` and are closed.
            max_inflight: rounds concurrently between CHALLENGE and
                VERDICT, service-wide.
            obs: optional :class:`~repro.obs.ObsContext`; sessions,
                frames, verdicts and errors are published as events and
                metrics when given. The ``serve_*`` families are
                pre-registered and shape-checked up front.
            tracer: optional :class:`~repro.obs.tracing.Tracer`; rounds
                whose RESEED carried a trace envelope emit a
                ``serve.round`` span into it.
            wire_versions: wire framings this service will accept in a
                HELLO negotiation (default: everything this build
                speaks). ``(1,)`` pins a v1-only service: a HELLO
                offering v2 alongside v1 negotiates down to v1, and a
                v2-only offer earns ``unsupported-version`` — the
                fallback paths the negotiation tests pin.

        Raises:
            ValueError: on non-positive caps, an unknown wire version,
                or a drifted metric shape.
        """
        from .protocol import SUPPORTED_WIRE_VERSIONS

        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if wire_versions is None:
            wire_versions = SUPPORTED_WIRE_VERSIONS
        wire_versions = tuple(int(v) for v in wire_versions)
        if not wire_versions or 1 not in wire_versions:
            raise ValueError("wire_versions must include 1 (the HELLO framing)")
        unknown = set(wire_versions) - set(SUPPORTED_WIRE_VERSIONS)
        if unknown:
            raise ValueError(f"unsupported wire versions: {sorted(unknown)}")
        self.wire_versions = wire_versions
        self.session_config = (
            session_config if session_config is not None else SessionConfig()
        )
        self.max_sessions = max_sessions
        self.inflight = asyncio.Semaphore(max_inflight)
        self.groups: Dict[str, HostedGroup] = {}
        self.obs = obs
        self.tracer = tracer
        if obs is not None:
            register_serve_metrics(obs.registry)
        self.sessions_served = 0
        self.sessions_refused = 0
        self._active_sessions = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._session_tasks: set = set()

    # ------------------------------------------------------------------
    # group hosting
    # ------------------------------------------------------------------

    def host_group(self, name: str, monitor: MonitoringServer) -> HostedGroup:
        """Register a fully built monitoring server under ``name``.

        Raises:
            ValueError: on a duplicate or empty name.
        """
        if not name:
            raise ValueError("group name must be non-empty")
        if name in self.groups:
            raise ValueError(f"group {name!r} already hosted")
        group = HostedGroup(name, monitor)
        self.groups[name] = group
        return group

    def create_group(
        self,
        name: str,
        population: int,
        tolerance: int,
        confidence: float = 0.95,
        seed: int = 0,
        counter_tags: bool = True,
        comm_budget: int = 20,
    ) -> HostedGroup:
        """Build, register and host a group in one call.

        The group's tag IDs are drawn from ``default_rng(seed)`` and a
        *distinct* stream (``seed + 1``) feeds the seed issuer, so a
        reader simulating the same population
        (:func:`build_population_for`) agrees with the server about
        which tags exist — the networked analogue of the in-process
        setup every test and example uses.
        """
        from ..rfid.population import TagPopulation

        requirement = MonitorRequirement(population, tolerance, confidence)
        monitor = MonitoringServer(
            requirement,
            rng=np.random.default_rng(seed + 1),
            counter_tags=counter_tags,
            comm_budget=comm_budget,
        )
        tags = TagPopulation.create(
            population,
            uses_counter=counter_tags,
            rng=np.random.default_rng(seed),
        )
        monitor.register(tags.ids.tolist())
        return self.host_group(name, monitor)

    @staticmethod
    def build_population_for(
        population: int, seed: int = 0, counter_tags: bool = True
    ):
        """The physical population matching :meth:`create_group`.

        Reader-side helper: clients own the channel, so they rebuild
        the same tag set from the same seed.
        """
        from ..rfid.population import TagPopulation

        return TagPopulation.create(
            population,
            uses_counter=counter_tags,
            rng=np.random.default_rng(seed),
        )

    def apply_membership(
        self,
        group_name: str,
        op: str,
        tag_ids,
        replacement_ids=None,
    ) -> int:
        """Apply a membership delta to a hosted group; returns the new epoch.

        Callers (the session layer, the shard worker) are responsible for
        holding the group lock and for optimistic-concurrency epoch checks;
        this method is the single point where a delta reaches the monitor,
        so workers can override it to persist a snapshot per change.

        Raises:
            KeyError: unknown group.
            ValueError: invalid delta (propagated from the monitor).
        """
        group = self.groups[group_name]
        epoch = group.monitor.apply_membership(
            op, tag_ids, replacement_ids=replacement_ids
        )
        self.observe_membership(group, op, epoch)
        return epoch

    # ------------------------------------------------------------------
    # listener lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._accept, host=host, port=port
        )

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def active_sessions(self) -> int:
        return self._active_sessions

    async def close(self) -> None:
        """Stop accepting, cancel live sessions, release the port."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._session_tasks):
            task.cancel()
        if self._session_tasks:
            await asyncio.gather(*self._session_tasks, return_exceptions=True)

    async def __aenter__(self) -> "MonitoringService":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        from . import protocol

        if self._active_sessions >= self.max_sessions:
            self.sessions_refused += 1
            self._count("serve_sessions_refused_total")
            try:
                await protocol.write_frame(
                    writer,
                    protocol.error_frame(
                        "server-busy",
                        f"session cap {self.max_sessions} reached",
                    ),
                )
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        self._active_sessions += 1
        self.sessions_served += 1
        session = ServeSession(
            self, self.sessions_served, reader, writer, self.session_config
        )
        task = asyncio.current_task()
        if task is not None:
            self._session_tasks.add(task)
            task.add_done_callback(self._session_tasks.discard)
        try:
            await session.run()
        except asyncio.CancelledError:
            # Service shutdown cancels live sessions; ending the task
            # cleanly here keeps asyncio's stream machinery quiet.
            pass
        finally:
            self._active_sessions -= 1

    # ------------------------------------------------------------------
    # observability hooks (no-ops without an obs context)
    # ------------------------------------------------------------------

    def _count(self, name: str, help_text: str = "", **labels) -> None:
        if self.obs is None:
            return
        counter = self.obs.registry.counter(
            name, help_text or name.replace("_", " "),
            labelnames=tuple(sorted(labels)) if labels else (),
        )
        if labels:
            counter.labels(**labels).inc()
        else:
            counter.inc()

    def observe_session(self, session, phase: str) -> None:
        self._count("serve_sessions_total", "sessions by phase", phase=phase)
        if self.obs is not None:
            self.obs.bus.emit(
                f"serve.session.{phase}",
                scope=session.scope,
                session=session.session_id,
            )

    def observe_negotiation(self, session, version: int) -> None:
        self._count(
            "serve_wire_negotiations_total",
            "HELLO negotiations by chosen wire version",
            version=str(version),
        )
        if self.obs is not None:
            self.obs.bus.emit(
                "serve.negotiate", scope=session.scope, version=version
            )

    def observe_frame(self, session, frame_type: str, direction: str) -> None:
        self._count(
            "serve_frames_total",
            "wire frames by type and direction",
            type=frame_type,
            direction=direction,
        )

    def observe_error(self, session, code: str) -> None:
        self._count("serve_errors_total", "protocol errors by code", code=code)
        if self.obs is not None:
            self.obs.bus.emit(
                "serve.error", scope=session.scope, code=code
            )

    def observe_membership(self, group: HostedGroup, op: str, epoch: int) -> None:
        self._count(
            "population_updates_total",
            "applied membership deltas by group and op",
            group=group.name,
            op=op,
        )
        if self.obs is not None:
            self.obs.registry.gauge(
                "population_epoch",
                "current population epoch by group",
                ("group",),
            ).labels(group=group.name).set(float(epoch))
            self.obs.bus.emit(
                "population.epoch",
                scope=f"serve/group-{group.name}",
                group=group.name,
                op=op,
                epoch=epoch,
            )

    def observe_verdict(
        self,
        group: HostedGroup,
        proto: str,
        result,
        timed_out: bool = False,
        round_index: Optional[int] = None,
        timer_us: Optional[float] = None,
        elapsed_us: Optional[float] = None,
        trace=None,
    ) -> None:
        self._count(
            "serve_verdicts_total",
            "round verdicts by group and outcome",
            group=group.name,
            verdict=result.verdict.value,
        )
        if timed_out:
            self._count("serve_timeouts_total", "rounds lost to the deadline")
        self._observe_slo(proto, result, timer_us, elapsed_us)
        self._record_span(group, proto, result, round_index, trace)
        if self.obs is not None:
            self.obs.bus.emit(
                "serve.verdict",
                scope=f"serve/group-{group.name}",
                group=group.name,
                protocol=proto,
                verdict=result.verdict.value,
                frame_size=result.frame_size,
                mismatched=len(result.mismatched_slots),
                timed_out=timed_out,
            )

    def _observe_slo(self, proto, result, timer_us, elapsed_us) -> None:
        """SLO accounting: latency, budget consumption, late rejects.

        Latency is the round's *simulated* air time, which is
        seed-derived — the histograms stay digest-stable and mergeable
        across worker counts (wall clock lives on spans, never in
        metrics). Budget consumption is Theorem 5's quantity: the
        fraction of the UTRP timer the round actually used.
        """
        if self.obs is None:
            return
        if result.verdict.value == "rejected-late":
            self._count(
                "serve_late_rejections_total",
                "UTRP rounds rejected late (Theorem 5 path)",
            )
        if elapsed_us is None:
            return
        self.obs.registry.histogram(
            "serve_round_latency_us",
            "round latency in simulated microseconds",
            buckets=DEFAULT_BUCKETS,
            keep_samples=False,
        ).observe(float(elapsed_us))
        if timer_us is not None and timer_us > 0:
            self.obs.registry.histogram(
                "serve_deadline_budget_ratio",
                "fraction of the UTRP timer budget one round consumed",
                buckets=BUDGET_BUCKETS,
                keep_samples=False,
            ).observe(float(elapsed_us) / float(timer_us))

    def _record_span(self, group, proto, result, round_index, trace) -> None:
        """One ``serve.round`` span when the RESEED carried an envelope.

        Digest-relevant fields are seed-derived only (verdict, frame
        size, protocol); the worker's identity stays on the tracer's
        ``process`` label, which the span-tree digest excludes — the
        same causal round digests identically whichever worker served
        it.
        """
        if self.tracer is None or trace is None:
            return
        parent = SpanContext.from_wire(trace)
        self.tracer.span(
            "serve.round",
            group.name,
            round_index if round_index is not None else -1,
            parent=parent,
            proto=proto,
            verdict=result.verdict.value,
            frame_size=int(result.frame_size),
        )
