"""repro.serve — the networked monitoring service.

Everything before this package checks tag sets in-process: the channel,
the reader and the :class:`~repro.core.monitor.MonitoringServer` live in
one interpreter. This package splits them across a wire the way the
paper's deployment picture does — the server keeps the secrets (IDs,
seeds, counters, verdict rule, Alg. 5 timer) and remote readers hold
only the physical channel — without changing a single verdict:
networked rounds verify through the exact same ``run_trp_round`` /
``run_utrp_round`` code paths, so for identical ``(master_seed, group,
f, r)`` the wire and in-process paths produce the same challenge seeds,
bitstrings and verdicts.

Layout:

* :mod:`~repro.serve.protocol` — the ``repro.serve/v1`` length-prefixed
  JSON wire format (CHALLENGE / BITSTRING / RESEED / VERDICT / ERROR)
  plus the HELLO wire-version negotiation;
* :mod:`~repro.serve.wire` — the negotiated binary v2 framing (struct
  headers, packed bitstrings, header-borne sequence numbers);
* :mod:`~repro.serve.session` — per-connection state machine, timer
  enforcement, per-session degradation;
* :mod:`~repro.serve.server` — the asyncio service: group hosting,
  backpressure, obs wiring;
* :mod:`~repro.serve.client` — the reader-side client;
* :mod:`~repro.serve.netfaults` — Gilbert–Elliott frame loss/delay;
* :mod:`~repro.serve.loadgen` — open-loop load generation emitting
  ``repro.obs.bench/v1`` records (``BENCH_serve.json``).
"""

from .client import ReaderClient, RoundOutcome
from .loadgen import (
    LoadgenConfig,
    LoadgenResult,
    format_loadgen_result,
    run_loadgen,
)
from .netfaults import FrameAction, FrameFaultInjector
from .protocol import (
    Frame,
    MAX_FRAME_BYTES,
    PROTOCOL_SCHEMA,
    SUPPORTED_WIRE_VERSIONS,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from .server import HostedGroup, MonitoringService
from .session import ServeSession, SessionConfig, SessionStats
from .wire import WireV1, WireV2, codec_for

__all__ = [
    "Frame",
    "FrameAction",
    "FrameFaultInjector",
    "HostedGroup",
    "LoadgenConfig",
    "LoadgenResult",
    "MAX_FRAME_BYTES",
    "MonitoringService",
    "PROTOCOL_SCHEMA",
    "ProtocolError",
    "ReaderClient",
    "RoundOutcome",
    "SUPPORTED_WIRE_VERSIONS",
    "ServeSession",
    "SessionConfig",
    "SessionStats",
    "WireV1",
    "WireV2",
    "codec_for",
    "decode_frame",
    "encode_frame",
    "format_loadgen_result",
    "run_loadgen",
]
