"""Network-fault adapter: Gilbert–Elliott loss applied to wire frames.

:mod:`repro.faults.models` models the *air* interface's correlated
failures; serving adds a second lossy hop — the network between reader
and server. The same two-state machinery transfers directly: a GOOD
state where frames flow, a BAD state (congestion burst, Wi-Fi handoff,
backhaul flap) where frames are dropped or delayed for a stretch.

:class:`FrameFaultInjector` advances one hidden
:class:`~repro.faults.models.GilbertElliott` chain per frame offered and
returns a :class:`FrameAction`: deliver, drop, or delay. Dropped
BITSTRING frames are the interesting case — the server hears nothing,
its Alg. 5 deadline fires, and the round takes the Theorem-5
``rejected-late`` path, which is exactly the behaviour the chaos tests
pin. Everything is driven by one explicit generator, so a seeded run
replays its fault schedule bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.models import GilbertElliott

__all__ = ["FrameAction", "FrameFaultInjector"]


@dataclass(frozen=True)
class FrameAction:
    """The adapter's decision for one frame.

    Attributes:
        dropped: the frame never reaches the peer.
        delay_us: extra latency charged to the frame (0 when clean).
    """

    dropped: bool = False
    delay_us: float = 0.0


_DELIVER = FrameAction()


class FrameFaultInjector:
    """Per-frame fault source over a hidden Gilbert–Elliott chain.

    While the chain sits in its BAD state, each offered frame is
    dropped with the model's ``loss_bad`` (``loss_good`` while GOOD);
    a frame that survives a BAD state is delayed by ``delay_us``
    instead (the burst is congestion, and queues drain slowly).

    Attributes:
        frames_seen / frames_dropped / frames_delayed: counters for
            assertions and reports.
        frames_by_type: per-frame-type offer counts — a v2 client also
            offers its HELLO to the injector, and this breakdown is how
            tests pin that a lost offer degrades negotiation to v1
            instead of erroring.
    """

    def __init__(
        self,
        model: GilbertElliott,
        rng: np.random.Generator,
        delay_us: float = 0.0,
    ):
        """Args:
            model: the burst process; ``loss_*`` act per frame here.
            rng: explicit generator — seeded runs replay exactly.
            delay_us: latency added to surviving frames in BAD state.

        Raises:
            ValueError: on a negative delay or a missing generator.
        """
        if rng is None:
            raise ValueError("a fault injector needs an rng")
        if delay_us < 0:
            raise ValueError("delay_us must be >= 0")
        self.model = model
        self.delay_us = delay_us
        self._rng = rng
        self._bad = bool(rng.random() < model.stationary_bad)
        self.frames_seen = 0
        self.frames_dropped = 0
        self.frames_delayed = 0
        self.frames_by_type: dict = {}

    def on_frame(self, frame_type: str) -> FrameAction:
        """Advance the chain one step and rule on this frame."""
        self.frames_seen += 1
        self.frames_by_type[frame_type] = (
            self.frames_by_type.get(frame_type, 0) + 1
        )
        if self._bad:
            if self._rng.random() < self.model.p_bad_to_good:
                self._bad = False
        else:
            if self._rng.random() < self.model.p_good_to_bad:
                self._bad = True
        loss_p = self.model.loss_bad if self._bad else self.model.loss_good
        if loss_p > 0.0 and self._rng.random() < loss_p:
            self.frames_dropped += 1
            return FrameAction(dropped=True)
        if self._bad and self.delay_us > 0.0:
            self.frames_delayed += 1
            return FrameAction(delay_us=self.delay_us)
        return _DELIVER
