"""The ``repro.serve/v2`` binary wire framing.

Wire version 2 carries exactly the same five frame types — and decodes
to exactly the same validated :class:`~repro.serve.protocol.Frame`
objects — as the JSON v1 framing, but trades the per-round JSON
re-encode for fixed little-endian structs and packed bitstring bytes
(8 slots per byte instead of one ASCII character per slot). It is only
ever spoken after a successful HELLO negotiation (see
:mod:`repro.serve.protocol`); a peer that never negotiates stays on v1.

Frame layout::

    header := <BBBBII  (12 bytes, little-endian)
              magic    u8  = 0xF2
              type     u8  (RESEED=1 CHALLENGE=2 BITSTRING=3
                            VERDICT=4 ERROR=5 MEMBERSHIP=6)
              flags    u8  (bit0: trace envelope present,
                            bit1: seq present in header,
                            bit2: RESEED carries a u64 epoch)
              pad      u8  = 0
    	      seq      u32 (0 when flags bit1 clear)
              body_len u32
    body   := type-specific fields, little-endian; strings are
              u16 length + UTF-8 bytes; an optional trace envelope
              (id | span | u32 hop) closes the body when flags bit0
              is set.

Per-type bodies::

    RESEED    group | protocol | [u64 epoch, when flags bit2]
    CHALLENGE group | protocol | u32 round | u32 frame_size
              | f64 timer_us (NaN = absent) | u32 nseeds | nseeds x u64
    BITSTRING group | u32 round | u32 nbits | packed bits
              | f64 elapsed_us | u32 seeds_used
    VERDICT   group | u32 round | verdict | u32 frame_size
              | u32 mismatched_slots | f64 elapsed_us | u8 alarm
    MEMBERSHIP group | op | u32 nids | nids x u64
              | u8 has_replacements | [u32 nreps | nreps x u64]
              | u64 epoch
    ERROR     code | detail

The MEMBERSHIP type code and the RESEED epoch flag are *additive*: a
peer that never churns (epoch absent, no membership frames) emits
bytes identical to builds that predate them, which is what the wire
interop tests pin.

The magic byte makes mid-stream version confusion detectable in both
directions: a v1 frame's first byte is always ``0x00`` (its big-endian
length prefix tops out at 4 MiB), so a v2 reader that sees ``0x00``
raises a typed ``version-mismatch`` instead of mis-parsing, and a v1
reader that sees ``0xF2`` as a length prefix rejects it as oversize.
Seeds ride as u64 (the issuer's seed space is ``2**62``); the absent
UTRP timer rides as NaN, which is unambiguous because the server
rejects non-finite timers outright.
"""

from __future__ import annotations

import asyncio
import math
import struct
from typing import Mapping, Optional

from . import protocol
from .protocol import Frame, MAX_FRAME_BYTES, ProtocolError

__all__ = [
    "WIRE_MAGIC",
    "WireV1",
    "WireV2",
    "codec_for",
]

#: First byte of every v2 frame; never the first byte of a v1 frame.
WIRE_MAGIC = 0xF2

_HEADER = struct.Struct("<BBBBII")
_FLAG_TRACE = 0x01
_FLAG_SEQ = 0x02
_FLAG_EPOCH = 0x04

_TYPE_CODES = {
    "RESEED": 1,
    "CHALLENGE": 2,
    "BITSTRING": 3,
    "VERDICT": 4,
    "ERROR": 5,
    "MEMBERSHIP": 6,
}
_CODE_TYPES = {code: name for name, code in _TYPE_CODES.items()}

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


# ----------------------------------------------------------------------
# body primitives
# ----------------------------------------------------------------------


def _put_str(parts: list, value: str) -> None:
    data = value.encode("utf-8")
    if len(data) > 0xFFFF:
        raise ProtocolError("oversize", f"string field is {len(data)} bytes")
    parts.append(struct.pack("<H", len(data)))
    parts.append(data)


class _Cursor:
    """Sequential reader over one frame body; every overrun is typed."""

    def __init__(self, data: bytes, frame_type: str):
        self.data = data
        self.pos = 0
        self.frame_type = frame_type

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ProtocolError(
                "truncated", f"{self.frame_type} body ends mid-field"
            )
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def string(self) -> str:
        length = struct.unpack("<H", self.take(2))[0]
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                "bad-field", f"{self.frame_type} string is not UTF-8"
            ) from exc

    def done(self) -> None:
        if self.pos != len(self.data):
            raise ProtocolError(
                "bad-field",
                f"{self.frame_type} body carries "
                f"{len(self.data) - self.pos} trailing bytes",
            )


# ----------------------------------------------------------------------
# per-type body codecs (payload dict <-> bytes)
# ----------------------------------------------------------------------


def _encode_body(frame_type: str, payload: Mapping[str, object]) -> bytes:
    parts: list = []
    if frame_type == "RESEED":
        _put_str(parts, payload["group"])
        _put_str(parts, payload["protocol"])
        if payload.get("epoch") is not None:
            parts.append(_U64.pack(payload["epoch"]))
    elif frame_type == "MEMBERSHIP":
        _put_str(parts, payload["group"])
        _put_str(parts, payload["op"])
        ids = payload["tag_ids"]
        parts.append(_U32.pack(len(ids)))
        for tag_id in ids:
            parts.append(_U64.pack(tag_id))
        reps = payload.get("replacement_ids")
        if reps is None:
            parts.append(struct.pack("<B", 0))
        else:
            parts.append(struct.pack("<B", 1))
            parts.append(_U32.pack(len(reps)))
            for tag_id in reps:
                parts.append(_U64.pack(tag_id))
        parts.append(_U64.pack(payload["epoch"]))
    elif frame_type == "CHALLENGE":
        _put_str(parts, payload["group"])
        _put_str(parts, payload["protocol"])
        parts.append(_U32.pack(payload["round"]))
        parts.append(_U32.pack(payload["frame_size"]))
        timer = payload.get("timer_us")
        parts.append(_F64.pack(math.nan if timer is None else float(timer)))
        seeds = payload["seeds"]
        parts.append(_U32.pack(len(seeds)))
        for seed in seeds:
            parts.append(_U64.pack(seed))
    elif frame_type == "BITSTRING":
        _put_str(parts, payload["group"])
        parts.append(_U32.pack(payload["round"]))
        bits = payload["bits"]
        parts.append(_U32.pack(len(bits)))
        parts.append(protocol.pack_bits(bits))
        parts.append(_F64.pack(float(payload["elapsed_us"])))
        parts.append(_U32.pack(payload["seeds_used"]))
    elif frame_type == "VERDICT":
        _put_str(parts, payload["group"])
        parts.append(_U32.pack(payload["round"]))
        _put_str(parts, payload["verdict"])
        parts.append(_U32.pack(payload["frame_size"]))
        parts.append(_U32.pack(payload["mismatched_slots"]))
        parts.append(_F64.pack(float(payload["elapsed_us"])))
        parts.append(struct.pack("<B", 1 if payload["alarm"] else 0))
    elif frame_type == "ERROR":
        _put_str(parts, payload["code"])
        _put_str(parts, payload["detail"])
    else:
        raise ProtocolError(
            "unknown-type", f"wire v2 cannot carry frame type {frame_type!r}"
        )
    trace = payload.get("trace")
    if trace is not None:
        _put_str(parts, trace["id"])
        _put_str(parts, trace["span"])
        parts.append(_U32.pack(trace["hop"]))
    return b"".join(parts)


def _decode_body(frame_type: str, data: bytes, flags: int) -> dict:
    cur = _Cursor(data, frame_type)
    payload: dict = {}
    if frame_type == "RESEED":
        payload["group"] = cur.string()
        payload["protocol"] = cur.string()
        if flags & _FLAG_EPOCH:
            payload["epoch"] = cur.u64()
    elif frame_type == "MEMBERSHIP":
        payload["group"] = cur.string()
        payload["op"] = cur.string()
        nids = cur.u32()
        payload["tag_ids"] = [cur.u64() for _ in range(nids)]
        if cur.u8():
            nreps = cur.u32()
            payload["replacement_ids"] = [cur.u64() for _ in range(nreps)]
        payload["epoch"] = cur.u64()
    elif frame_type == "CHALLENGE":
        payload["group"] = cur.string()
        payload["protocol"] = cur.string()
        payload["round"] = cur.u32()
        payload["frame_size"] = cur.u32()
        timer = cur.f64()
        if not math.isnan(timer):
            payload["timer_us"] = timer
        nseeds = cur.u32()
        payload["seeds"] = [cur.u64() for _ in range(nseeds)]
    elif frame_type == "BITSTRING":
        payload["group"] = cur.string()
        payload["round"] = cur.u32()
        nbits = cur.u32()
        packed = cur.take((nbits + 7) // 8)
        payload["bits"] = protocol.unpack_bits(packed, nbits)
        payload["elapsed_us"] = cur.f64()
        payload["seeds_used"] = cur.u32()
    elif frame_type == "VERDICT":
        payload["group"] = cur.string()
        payload["round"] = cur.u32()
        payload["verdict"] = cur.string()
        payload["frame_size"] = cur.u32()
        payload["mismatched_slots"] = cur.u32()
        payload["elapsed_us"] = cur.f64()
        payload["alarm"] = bool(cur.u8())
    elif frame_type == "ERROR":
        payload["code"] = cur.string()
        payload["detail"] = cur.string()
    if flags & _FLAG_TRACE:
        payload["trace"] = {
            "id": cur.string(),
            "span": cur.string(),
            "hop": cur.u32(),
        }
    cur.done()
    return payload


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------


class WireV1:
    """The JSON framing, as a codec object.

    Encoding strips the internal ``seq`` field: v1 wire traffic stays
    byte-identical to pre-seq builds, and genuinely old peers never see
    a field they would reject. (The server echoes seqs only on v2
    connections, so nothing is lost.)
    """

    version = 1

    @staticmethod
    def encode(frame: Frame) -> bytes:
        if "seq" in frame.payload:
            payload = {k: v for k, v in frame.payload.items() if k != "seq"}
            frame = Frame(frame.type, payload)
        return protocol.encode_frame(frame)

    @staticmethod
    async def read(
        reader: asyncio.StreamReader,
        max_bytes: int = MAX_FRAME_BYTES,
        on_bytes=None,
        idle_timeout_s: Optional[float] = None,
    ) -> Optional[Frame]:
        return await protocol.read_frame(
            reader, max_bytes, on_bytes, idle_timeout_s
        )


class WireV2:
    """The binary framing."""

    version = 2

    @staticmethod
    def encode(frame: Frame) -> bytes:
        protocol._validate(frame.type, frame.payload)
        code = _TYPE_CODES.get(frame.type)
        if code is None:
            raise ProtocolError(
                "unknown-type", f"wire v2 cannot carry frame type {frame.type!r}"
            )
        body = _encode_body(frame.type, frame.payload)
        if len(body) > MAX_FRAME_BYTES:
            raise ProtocolError(
                "oversize",
                f"frame body is {len(body)} bytes (cap {MAX_FRAME_BYTES})",
            )
        flags = 0
        seq = 0
        if frame.payload.get("trace") is not None:
            flags |= _FLAG_TRACE
        if frame.payload.get("seq") is not None:
            flags |= _FLAG_SEQ
            seq = int(frame.payload["seq"])
        if frame.type == "RESEED" and frame.payload.get("epoch") is not None:
            flags |= _FLAG_EPOCH
        header = _HEADER.pack(WIRE_MAGIC, code, flags, 0, seq, len(body))
        return header + body

    @staticmethod
    async def read(
        reader: asyncio.StreamReader,
        max_bytes: int = MAX_FRAME_BYTES,
        on_bytes=None,
        idle_timeout_s: Optional[float] = None,
    ) -> Optional[Frame]:
        header = await reader.read(_HEADER.size)
        if not header:
            return None
        while len(header) < _HEADER.size:
            more = await protocol._read_rest(
                reader.read(_HEADER.size - len(header)), idle_timeout_s
            )
            if not more:
                raise ProtocolError("truncated", "EOF inside v2 header")
            header += more
        magic, code, flags, pad, seq, body_len = _HEADER.unpack(header)
        if magic != WIRE_MAGIC:
            # A v1 length prefix always starts 0x00; anything that is
            # not our magic means the peer is speaking another framing.
            raise ProtocolError(
                "version-mismatch",
                f"expected v2 magic 0x{WIRE_MAGIC:02x}, got 0x{magic:02x}",
            )
        frame_type = _CODE_TYPES.get(code)
        if frame_type is None:
            raise ProtocolError("unknown-type", f"unknown v2 type code {code}")
        if pad != 0:
            raise ProtocolError("bad-field", "v2 header pad byte is non-zero")
        if flags & _FLAG_EPOCH and frame_type != "RESEED":
            raise ProtocolError(
                "bad-field", "epoch flag is only valid on RESEED frames"
            )
        if body_len > max_bytes:
            raise ProtocolError(
                "oversize", f"declared length {body_len} exceeds cap {max_bytes}"
            )
        try:
            body = await protocol._read_rest(
                reader.readexactly(body_len), idle_timeout_s
            )
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("truncated", "EOF inside frame body") from exc
        if on_bytes is not None:
            on_bytes(_HEADER.size + body_len)
        payload = _decode_body(frame_type, body, flags)
        if flags & _FLAG_SEQ:
            payload["seq"] = seq
        protocol._validate(frame_type, payload)
        return Frame(frame_type, payload)


def codec_for(version: int):
    """The codec object speaking wire ``version``.

    Raises:
        ProtocolError: for a version this build does not speak.
    """
    if version == 1:
        return WireV1
    if version == 2:
        return WireV2
    raise ProtocolError("unsupported-version", f"wire version {version}")
