"""The ``repro.serve/v1`` wire protocol.

The paper's deployment model is networked: the server issues ``(f, r)``
challenges to remote (possibly untrusted) readers and judges their
bitstring replies against a wall-clock deadline. This module pins that
conversation down as a versioned, length-prefixed JSON protocol small
enough to audit by hand:

``frame := uint32 big-endian length | <length> bytes of UTF-8 JSON``

Every JSON body is an object carrying ``v`` (the schema tag) and
``type`` (one of the five frame types); the remaining keys are the
frame's payload, validated strictly — unknown types, missing fields,
wrong field types and undeclared extra fields are all
:class:`ProtocolError`, never silent acceptance. Frames are capped at
:data:`MAX_FRAME_BYTES` so a hostile peer cannot balloon the server's
receive buffer.

Frame types (client C, server S):

======== ===== ==========================================================
type     dir   meaning
======== ===== ==========================================================
HELLO    both  wire-version negotiation at connection open (see below)
RESEED   C->S  request a fresh challenge for one group ("reseed me")
CHALLENGE S->C the pre-committed ``(f, r)`` (TRP) or ``(f, r_1..r_f,
               timer)`` (UTRP) for the round
BITSTRING C->S the scan proof: slot occupancy plus the reader's elapsed
               air time
VERDICT  S->C  the server's conclusion (intact / not-intact /
               rejected-late / rejected-malformed)
MEMBERSHIP C->S a population delta (commission / decommission /
               replace); the server acks by echoing it with the new
               population epoch stamped
ERROR    both  protocol-level failure; carries a machine code + detail
======== ===== ==========================================================

The bitstring crosses the wire as a ``0``/``1`` character string — a
frame of 10 000 slots costs 10 KB, far under the frame cap, and stays
human-readable in captures.

**Wire versions.** The JSON framing above is wire version 1 — the
format every peer speaks at connection open. A client that also speaks
the binary v2 framing (:mod:`repro.serve.wire`) may open with a HELLO
frame listing the versions it supports; the server answers with a
HELLO naming the highest version both sides share, and *after that
exchange* both sides switch framing on the connection. A peer that
never sends HELLO stays on v1 forever — negotiation is strictly opt-in
and per-connection (the shard gateway negotiates each hop
independently, so a v1 reader can still traverse a v2 gateway<->worker
link). Frame *semantics* are identical across versions: both codecs
produce the same validated :class:`Frame` objects, so verdicts, seeds
and bitstrings cannot depend on the framing.

Every frame additionally accepts an optional ``seq`` (int >= 0): the
session sequence number the v2 pipelined client uses to pin reply
ordering. The client stamps each round's requests with one fresh seq
and the server echoes that seq on the round's replies. In v2 the seq
rides in the fixed binary header (never the body); v1 peers simply
omit it.

**Membership frames and epochs.** Population churn
(:mod:`repro.population`) rides the protocol *additively*: a MEMBERSHIP
frame applies one delta and RESEED accepts an optional ``epoch`` field
pinning which population version the reader believes it is scanning
(the server answers ``stale-epoch`` on a mismatch instead of judging a
scan against the wrong set). Both are strictly opt-in — a peer that
never churns sends bytes identical to a pre-churn build, on both wire
versions, and epoch 0 is the paper's static set.

Every frame type additionally accepts an *optional* ``trace`` envelope
— ``{"id": trace_id, "span": parent span id, "hop": int}`` — that
propagates distributed-trace context across hops (reader -> gateway ->
worker). Absent means untraced: a v1 peer that never heard of tracing
is fully conformant, and a traced peer talking to an old one simply
gets no trace continuity. When present the envelope is validated as
strictly as any other field.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = [
    "PROTOCOL_SCHEMA",
    "MAX_FRAME_BYTES",
    "FRAME_TYPES",
    "SUPPORTED_WIRE_VERSIONS",
    "ProtocolError",
    "Frame",
    "encode_frame",
    "decode_frame",
    "decode_body",
    "read_frame",
    "write_frame",
    "reseed",
    "challenge_frame",
    "bitstring_frame",
    "verdict_frame",
    "membership_frame",
    "error_frame",
    "hello_frame",
    "MEMBERSHIP_WIRE_OPS",
    "choose_wire_version",
    "with_trace",
    "with_seq",
    "bits_to_array",
    "array_to_bits",
    "pack_bits",
    "unpack_bits",
]

#: Schema tag carried by (and required of) every frame.
PROTOCOL_SCHEMA = "repro.serve/v1"

#: Wire framings this build can speak. 1 is the JSON framing defined
#: here; 2 is the binary framing in :mod:`repro.serve.wire`. HELLO
#: negotiation picks the highest version both peers list.
SUPPORTED_WIRE_VERSIONS = (1, 2)

#: Hard cap on one frame's JSON body. A UTRP challenge for ``f`` slots
#: carries ``f`` seeds of ~20 digits; 4 MiB covers frames beyond 10^5
#: slots while bounding a hostile peer's buffer demand.
MAX_FRAME_BYTES = 4 << 20

#: ``type`` -> required payload fields and their JSON types. ``None``
#: in an ``Optional`` position means the field may be absent entirely.
_SCHEMAS: Dict[str, Dict[str, tuple]] = {
    "HELLO": {
        "versions": (list,),
        "trace": (dict,),
        "seq": (int,),
    },
    "RESEED": {
        "group": (str,),
        "protocol": (str,),
        "epoch": (int,),
        "trace": (dict,),
        "seq": (int,),
    },
    "MEMBERSHIP": {
        "group": (str,),
        "op": (str,),
        "tag_ids": (list,),
        "epoch": (int,),
        "replacement_ids": (list,),
        "trace": (dict,),
        "seq": (int,),
    },
    "CHALLENGE": {
        "group": (str,),
        "protocol": (str,),
        "round": (int,),
        "frame_size": (int,),
        "seeds": (list,),
        "timer_us": (int, float, type(None)),
        "trace": (dict,),
        "seq": (int,),
    },
    "BITSTRING": {
        "group": (str,),
        "round": (int,),
        "bits": (str,),
        "elapsed_us": (int, float),
        "seeds_used": (int,),
        "trace": (dict,),
        "seq": (int,),
    },
    "VERDICT": {
        "group": (str,),
        "round": (int,),
        "verdict": (str,),
        "frame_size": (int,),
        "mismatched_slots": (int,),
        "elapsed_us": (int, float),
        "alarm": (bool,),
        "trace": (dict,),
        "seq": (int,),
    },
    "ERROR": {
        "code": (str,),
        "detail": (str,),
        "trace": (dict,),
        "seq": (int,),
    },
}

FRAME_TYPES = frozenset(_SCHEMAS)

#: Payload fields that may be omitted (treated as ``None`` on decode).
#: ``trace`` is optional on every frame: absent means untraced, which
#: is what a pre-tracing v1 peer always sends. ``seq`` is optional on
#: every frame: absent means unordered, which is what a non-pipelining
#: peer always sends.
_OPTIONAL = (
    {("CHALLENGE", "timer_us")}
    | {("RESEED", "epoch"), ("MEMBERSHIP", "replacement_ids")}
    | {(t, "trace") for t in _SCHEMAS}
    | {(t, "seq") for t in _SCHEMAS}
)

#: Membership operations a MEMBERSHIP frame may carry (mirrors
#: :data:`repro.population.registry.MEMBERSHIP_OPS`; duplicated here so
#: the wire layer validates without importing the lifecycle layer).
MEMBERSHIP_WIRE_OPS = ("commission", "decommission", "replace")

#: The trace envelope's own schema: exactly these fields.
_TRACE_FIELDS: Dict[str, tuple] = {"id": (str,), "span": (str,), "hop": (int,)}


def _validate_trace(frame_type: str, envelope: Mapping[str, object]) -> None:
    for field, kinds in _TRACE_FIELDS.items():
        if field not in envelope:
            raise ProtocolError(
                "bad-field", f"{frame_type}.trace missing {field!r}"
            )
        value = envelope[field]
        if isinstance(value, bool) or not isinstance(value, kinds):
            raise ProtocolError(
                "bad-field",
                f"{frame_type}.trace.{field} has wrong type "
                f"{type(value).__name__}",
            )
    if int(envelope["hop"]) < 0:
        raise ProtocolError("bad-field", f"{frame_type}.trace.hop is negative")
    extras = set(envelope) - set(_TRACE_FIELDS)
    if extras:
        raise ProtocolError(
            "unknown-field",
            f"{frame_type}.trace carries undeclared fields {sorted(extras)}",
        )


class ProtocolError(ValueError):
    """A frame violated ``repro.serve/v1``.

    Attributes:
        code: short machine-readable cause, mirrored into the ERROR
            frame the receiving side answers with.
    """

    def __init__(self, code: str, detail: str):
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame: its type plus validated payload."""

    type: str
    payload: Mapping[str, object]

    def __getitem__(self, key: str):
        return self.payload[key]

    def get(self, key: str, default=None):
        return self.payload.get(key, default)


# ----------------------------------------------------------------------
# encode / decode
# ----------------------------------------------------------------------


def _validate(frame_type: str, payload: Mapping[str, object]) -> None:
    schema = _SCHEMAS.get(frame_type)
    if schema is None:
        raise ProtocolError("unknown-type", f"unknown frame type {frame_type!r}")
    for field, kinds in schema.items():
        if field not in payload:
            if (frame_type, field) in _OPTIONAL:
                continue
            raise ProtocolError(
                "missing-field", f"{frame_type} frame missing {field!r}"
            )
        value = payload[field]
        # bool is an int subclass; only accept it where bool is listed.
        if isinstance(value, bool) and bool not in kinds:
            raise ProtocolError(
                "bad-field", f"{frame_type}.{field} has wrong type bool"
            )
        if not isinstance(value, kinds):
            raise ProtocolError(
                "bad-field",
                f"{frame_type}.{field} has wrong type "
                f"{type(value).__name__}",
            )
    extras = set(payload) - set(schema)
    if extras:
        raise ProtocolError(
            "unknown-field",
            f"{frame_type} frame carries undeclared fields {sorted(extras)}",
        )
    envelope = payload.get("trace")
    if envelope is not None:
        _validate_trace(frame_type, envelope)
    seq = payload.get("seq")
    if seq is not None and int(seq) < 0:
        raise ProtocolError("bad-field", f"{frame_type}.seq is negative")
    if frame_type == "HELLO":
        versions = payload["versions"]
        if not versions or not all(
            isinstance(v, int) and not isinstance(v, bool) and v > 0
            for v in versions
        ):
            raise ProtocolError(
                "bad-field", "HELLO.versions must be a non-empty list of ints"
            )
    epoch = payload.get("epoch")
    if epoch is not None and int(epoch) < 0:
        raise ProtocolError("bad-field", f"{frame_type}.epoch is negative")
    if frame_type == "MEMBERSHIP":
        if payload["op"] not in MEMBERSHIP_WIRE_OPS:
            raise ProtocolError(
                "bad-field",
                f"MEMBERSHIP.op must be one of {list(MEMBERSHIP_WIRE_OPS)}, "
                f"got {payload['op']!r}",
            )
        for field in ("tag_ids", "replacement_ids"):
            ids = payload.get(field)
            if ids is None:
                continue
            if not all(
                isinstance(i, int) and not isinstance(i, bool) and i >= 0
                for i in ids
            ):
                raise ProtocolError(
                    "bad-field",
                    f"MEMBERSHIP.{field} must be non-negative ints",
                )
        if not payload["tag_ids"]:
            raise ProtocolError(
                "bad-field", "MEMBERSHIP.tag_ids must be non-empty"
            )


def encode_frame(frame: Frame) -> bytes:
    """Serialise one frame to its length-prefixed wire form.

    Raises:
        ProtocolError: if the frame fails its own schema or exceeds
            :data:`MAX_FRAME_BYTES`.
    """
    _validate(frame.type, frame.payload)
    body = dict(frame.payload)
    body["v"] = PROTOCOL_SCHEMA
    body["type"] = frame.type
    data = json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "oversize", f"frame body is {len(data)} bytes (cap {MAX_FRAME_BYTES})"
        )
    return len(data).to_bytes(4, "big") + data


def decode_body(data: bytes) -> Frame:
    """Decode one frame body (the bytes after the length prefix).

    Strict by construction: must be valid UTF-8 JSON, must be an
    object, must carry the exact schema tag, a known type, every
    required field with the right JSON type, and nothing else.

    Raises:
        ProtocolError: with a machine code naming the first violation.
    """
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "oversize", f"frame body is {len(data)} bytes (cap {MAX_FRAME_BYTES})"
        )
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-json", str(exc)) from exc
    if not isinstance(body, dict):
        raise ProtocolError("bad-json", "frame body must be a JSON object")
    if body.get("v") != PROTOCOL_SCHEMA:
        raise ProtocolError(
            "bad-schema",
            f"expected schema {PROTOCOL_SCHEMA!r}, got {body.get('v')!r}",
        )
    frame_type = body.get("type")
    if not isinstance(frame_type, str):
        raise ProtocolError("unknown-type", "frame carries no type")
    payload = {k: v for k, v in body.items() if k not in ("v", "type")}
    _validate(frame_type, payload)
    return Frame(frame_type, payload)


def decode_frame(data: bytes) -> Frame:
    """Decode one complete wire frame (length prefix + body).

    Raises:
        ProtocolError: on a short buffer, a length/body mismatch, or
            any body-level violation.
    """
    if len(data) < 4:
        raise ProtocolError("truncated", f"frame shorter than its prefix: {len(data)}")
    length = int.from_bytes(data[:4], "big")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "oversize", f"declared length {length} exceeds cap {MAX_FRAME_BYTES}"
        )
    if len(data) - 4 != length:
        raise ProtocolError(
            "truncated", f"declared {length} bytes, got {len(data) - 4}"
        )
    return decode_body(data[4:])


# ----------------------------------------------------------------------
# asyncio stream helpers
# ----------------------------------------------------------------------


async def _read_rest(coro, idle_timeout_s: Optional[float]):
    """Await one *incremental* read under the frame-idle budget.

    The first byte of a frame may take arbitrarily long to arrive (an
    idle session is legal); once a frame has *started*, a peer that
    dribbles the remainder byte-by-byte is holding a session slot
    hostage. Each follow-up read therefore gets ``idle_timeout_s``.
    """
    if idle_timeout_s is None:
        return await coro
    try:
        return await asyncio.wait_for(coro, idle_timeout_s)
    except asyncio.TimeoutError:
        raise ProtocolError(
            "idle-read",
            f"peer stalled mid-frame for more than {idle_timeout_s}s",
        ) from None


async def read_frame(
    reader: asyncio.StreamReader,
    max_bytes: int = MAX_FRAME_BYTES,
    on_bytes=None,
    idle_timeout_s: Optional[float] = None,
) -> Optional[Frame]:
    """Read one frame from a stream; ``None`` on clean EOF.

    The length prefix is validated *before* the body is buffered, so an
    oversize declaration costs four bytes of reading, not ``max_bytes``.
    ``on_bytes`` (when given) is called with the frame's full wire size
    — prefix included — once the body has been read; the loadgen's
    bytes-per-round accounting hangs off it.

    ``idle_timeout_s`` bounds how long the peer may stall *inside* a
    frame (after its first byte arrived). The wait for a frame to start
    is not timed here — that idle budget belongs to the session layer.

    Raises:
        ProtocolError: on an oversize declaration, a mid-frame EOF, a
            mid-frame stall past ``idle_timeout_s``, or a body-level
            violation.
    """
    prefix = await reader.read(4)
    if not prefix:
        return None
    while len(prefix) < 4:
        more = await _read_rest(reader.read(4 - len(prefix)), idle_timeout_s)
        if not more:
            raise ProtocolError("truncated", "EOF inside length prefix")
        prefix += more
    length = int.from_bytes(prefix, "big")
    if length > max_bytes:
        raise ProtocolError(
            "oversize", f"declared length {length} exceeds cap {max_bytes}"
        )
    try:
        body = await _read_rest(reader.readexactly(length), idle_timeout_s)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("truncated", "EOF inside frame body") from exc
    if on_bytes is not None:
        on_bytes(4 + length)
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, frame: Frame) -> None:
    """Serialise and flush one frame."""
    writer.write(encode_frame(frame))
    await writer.drain()


# ----------------------------------------------------------------------
# frame constructors
# ----------------------------------------------------------------------


def reseed(
    group: str, protocol: str, epoch: Optional[int] = None
) -> Frame:
    """Client request: issue me a fresh challenge for ``group``.

    ``epoch`` (when given) pins the population version the reader's
    channel reflects; the server rejects a mismatch with
    ``stale-epoch`` instead of judging the scan against the wrong set.
    ``None`` keeps the frame byte-identical to pre-churn builds.
    """
    payload = {"group": group, "protocol": protocol}
    if epoch is not None:
        payload["epoch"] = int(epoch)
    return Frame("RESEED", payload)


def membership_frame(
    group: str,
    op: str,
    tag_ids,
    epoch: int,
    replacement_ids=None,
) -> Frame:
    """One population delta (request), or its ack (server echo).

    On the request, ``epoch`` is the epoch the sender last observed
    (optimistic concurrency: a mismatch earns ``stale-epoch``); on the
    ack, the epoch the delta *produced*.
    """
    payload = {
        "group": group,
        "op": op,
        "tag_ids": [int(i) for i in tag_ids],
        "epoch": int(epoch),
    }
    if replacement_ids is not None:
        payload["replacement_ids"] = [int(i) for i in replacement_ids]
    return Frame("MEMBERSHIP", payload)


def challenge_frame(
    group: str,
    protocol: str,
    round_index: int,
    frame_size: int,
    seeds,
    timer_us: Optional[float] = None,
) -> Frame:
    """Server challenge. TRP sends one seed; UTRP sends the whole
    pre-committed list plus the Alg. 5 timer."""
    payload = {
        "group": group,
        "protocol": protocol,
        "round": int(round_index),
        "frame_size": int(frame_size),
        "seeds": [int(s) for s in seeds],
    }
    if timer_us is not None:
        payload["timer_us"] = float(timer_us)
    return Frame("CHALLENGE", payload)


def bitstring_frame(
    group: str,
    round_index: int,
    bitstring: np.ndarray,
    elapsed_us: float,
    seeds_used: int,
) -> Frame:
    """Client proof: the scan's occupancy string plus air time."""
    return Frame(
        "BITSTRING",
        {
            "group": group,
            "round": int(round_index),
            "bits": array_to_bits(bitstring),
            "elapsed_us": float(elapsed_us),
            "seeds_used": int(seeds_used),
        },
    )


def verdict_frame(
    group: str,
    round_index: int,
    verdict: str,
    frame_size: int,
    mismatched_slots: int,
    elapsed_us: float,
    alarm: bool,
) -> Frame:
    """Server conclusion for one round."""
    return Frame(
        "VERDICT",
        {
            "group": group,
            "round": int(round_index),
            "verdict": verdict,
            "frame_size": int(frame_size),
            "mismatched_slots": int(mismatched_slots),
            "elapsed_us": float(elapsed_us),
            "alarm": bool(alarm),
        },
    )


def error_frame(code: str, detail: str) -> Frame:
    """Protocol-level failure notice (either direction)."""
    return Frame("ERROR", {"code": code, "detail": detail})


def hello_frame(versions=SUPPORTED_WIRE_VERSIONS) -> Frame:
    """Wire-version offer (client) or choice (server, single entry)."""
    return Frame("HELLO", {"versions": [int(v) for v in versions]})


def choose_wire_version(offered, supported=SUPPORTED_WIRE_VERSIONS) -> Optional[int]:
    """Highest wire version in both lists, or ``None`` if disjoint."""
    common = set(int(v) for v in offered) & set(int(v) for v in supported)
    return max(common) if common else None


def with_seq(frame: Frame, seq: Optional[int]) -> Frame:
    """The same frame carrying ``seq`` as its session sequence number.

    ``None`` returns the frame unchanged, so non-pipelining callers can
    thread an optional seq without branching.
    """
    if seq is None:
        return frame
    return Frame(frame.type, {**frame.payload, "seq": int(seq)})


def with_trace(frame: Frame, envelope: Optional[Mapping[str, object]]) -> Frame:
    """The same frame carrying ``envelope`` as its trace context.

    ``None`` (or an empty envelope) returns the frame unchanged, so
    callers can thread an optional context without branching.
    """
    if not envelope:
        return frame
    return Frame(frame.type, {**frame.payload, "trace": dict(envelope)})


# ----------------------------------------------------------------------
# bitstring codec
# ----------------------------------------------------------------------


def array_to_bits(bitstring: np.ndarray) -> str:
    """Occupancy vector -> ``"0101..."`` wire string."""
    arr = np.asarray(bitstring)
    chars = np.where(arr != 0, np.uint8(ord("1")), np.uint8(ord("0")))
    return chars.astype(np.uint8).tobytes().decode("ascii")


def bits_to_array(bits: str) -> np.ndarray:
    """Wire string -> occupancy vector.

    Raises:
        ProtocolError: if any character is not ``0`` or ``1``.
    """
    try:
        raw = bits.encode("ascii")
    except UnicodeEncodeError:
        raise ProtocolError("bad-field", "bits must contain only 0/1") from None
    # Vectorised validation: anything outside "01" lands outside {0, 1}
    # after the wrapping uint8 subtraction (str.strip("01") costs ~100x
    # more at 10k slots — this runs per BITSTRING on the server).
    arr = np.frombuffer(raw, dtype=np.uint8) - np.uint8(ord("0"))
    if arr.size and int(arr.max()) > 1:
        raise ProtocolError("bad-field", "bits must contain only 0/1")
    return arr


def pack_bits(bits: str) -> bytes:
    """``"0101..."`` string -> packed bytes, 8 slots per byte (MSB first).

    The v2 codec's bitstring body: ``ceil(nbits / 8)`` bytes instead of
    ``nbits`` ASCII characters. Round-trips exactly through
    :func:`unpack_bits` given the original bit count.

    Raises:
        ProtocolError: if any character is not ``0`` or ``1``.
    """
    return np.packbits(bits_to_array(bits)).tobytes()


def unpack_bits(data: bytes, nbits: int) -> str:
    """Packed bytes + bit count -> the ``"0101..."`` wire string.

    Raises:
        ProtocolError: if ``data`` is the wrong length for ``nbits`` or
            carries set bits in the final byte's padding.
    """
    if nbits < 0 or len(data) != (nbits + 7) // 8:
        raise ProtocolError(
            "bad-field",
            f"packed bitstring is {len(data)} bytes for {nbits} bits",
        )
    if nbits == 0:
        return ""
    arr = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    if arr[nbits:].any():
        raise ProtocolError("bad-field", "packed bitstring has non-zero padding")
    return (arr[:nbits] + np.uint8(ord("0"))).tobytes().decode("ascii")
