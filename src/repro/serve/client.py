"""Reader-side client for the monitoring service.

:class:`ReaderClient` is the honest remote reader of the paper's
deployment picture: it owns a physical channel (the tags actually in
its field), asks the server to reseed it, executes the challenge with
the stock :class:`~repro.rfid.reader.TrustedReader`, and ships the
occupancy bitstring back with its measured air time. It is usable both
as a library (drive one warehouse reader) and as the unit the load
generator (:mod:`repro.serve.loadgen`) multiplies into a simulated
fleet.

Two knobs exist purely to exercise the server's defences:

* ``extra_delay_us`` — a slow reader; its reported air time grows by
  this much per round, so a sufficiently slow UTRP scan trips the
  Alg. 5 timer and earns ``rejected-late`` (Theorem 5);
* ``fault_injector`` — a :class:`~repro.serve.netfaults.
  FrameFaultInjector`; dropped BITSTRING frames leave the server
  waiting into its deadline, delayed ones add wire latency on top of
  the scan.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Optional

from ..obs.tracing import SpanContext, derive_span_id, trace_id_for
from ..rfid.channel import SlottedChannel
from ..rfid.reader import TrustedReader
from ..rfid.timing import LinkTiming, UNIT_SLOTS
from . import protocol
from .protocol import Frame, ProtocolError

__all__ = ["RoundOutcome", "ReaderClient"]


@dataclass(frozen=True)
class RoundOutcome:
    """What one wire round produced, as seen from the reader.

    Attributes:
        group: group the round ran against.
        round_index: server-assigned round number.
        verdict: the VERDICT frame's verdict string, or ``"dropped"``
            when the fault injector swallowed our proof and the server
            answered with its deadline verdict instead.
        alarm: whether the server raised an operator alarm.
        frame_size: the challenge's ``f``.
        elapsed_us: air time we reported (0 when the proof was dropped).
        mismatched_slots: server-counted disagreeing slots.
        bytes_sent / bytes_received: wire bytes this round moved in
            each direction, length prefixes included — the
            bytes-per-round measurement the wire-v2 work needs.
    """

    group: str
    round_index: int
    verdict: str
    alarm: bool
    frame_size: int
    elapsed_us: float
    mismatched_slots: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class ReaderClient:
    """One remote reader speaking ``repro.serve/v1``."""

    def __init__(
        self,
        host: str,
        port: int,
        channel: SlottedChannel,
        reader: Optional[TrustedReader] = None,
        timing: LinkTiming = UNIT_SLOTS,
        extra_delay_us: float = 0.0,
        fault_injector=None,
        tracer=None,
        trace_namespace: str = "",
    ):
        """Args:
            host, port: where the service listens.
            channel: the physical population in this reader's field —
                the one thing the reader owns in the trust model.
            reader: scan implementation (honest by default).
            timing: link model used to report elapsed air time; must
                match the server's for timer parity.
            extra_delay_us: additional reported latency per round.
            fault_injector: optional frame-level fault source (see
                :mod:`repro.serve.netfaults`).
            tracer: optional :class:`~repro.obs.tracing.Tracer`; when
                given, every round roots a ``reader.round`` span and
                sends its context in the RESEED's ``trace`` envelope.
            trace_namespace: distinguishes this client's traces from
                other clients driving the *same* group (trace ids are
                per-(namespace, group, round)); leave empty when one
                client owns each group.
        """
        if extra_delay_us < 0:
            raise ValueError("extra_delay_us must be >= 0")
        self.host = host
        self.port = port
        self.channel = channel
        self.reader = reader if reader is not None else TrustedReader()
        self.timing = timing
        self.extra_delay_us = extra_delay_us
        self.fault_injector = fault_injector
        self.tracer = tracer
        self.trace_namespace = trace_namespace
        self.bytes_sent = 0
        self.bytes_received = 0
        self._round_counters: Dict[str, int] = {}
        self._stream: Optional[tuple] = None

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------

    async def connect(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._stream = (reader, writer)

    async def close(self) -> None:
        if self._stream is not None:
            self._stream[1].close()
            try:
                await self._stream[1].wait_closed()
            except (ConnectionError, OSError):
                pass
            self._stream = None

    async def __aenter__(self) -> "ReaderClient":
        if self._stream is None:
            await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _send(self, frame: Frame) -> None:
        data = protocol.encode_frame(frame)
        self._stream[1].write(data)
        await self._stream[1].drain()
        self.bytes_sent += len(data)

    def _on_bytes(self, size: int) -> None:
        self.bytes_received += size

    async def _recv(self) -> Frame:
        frame = await protocol.read_frame(
            self._stream[0], on_bytes=self._on_bytes
        )
        if frame is None:
            raise ConnectionError("server closed the connection")
        return frame

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------

    async def run_round(self, group: str, proto: str = "trp") -> RoundOutcome:
        """One RESEED -> CHALLENGE -> scan -> BITSTRING -> VERDICT.

        Raises:
            ProtocolError: if the server answers with an ERROR frame or
                an out-of-protocol frame.
            ConnectionError: if the server hangs up mid-round.
        """
        if self._stream is None:
            await self.connect()
        sent_before = self.bytes_sent
        received_before = self.bytes_received

        # Trace identity is client-local and deterministic: the n-th
        # round this client runs against `group` is the same trace on
        # every run, whatever path (direct / gateway / failover retry)
        # serves it. The root span is recorded once the round ends, but
        # its id is a pure function of the trace, so the envelope can
        # name it up front.
        trace_ctx = None
        if self.tracer is not None:
            n = self._round_counters.get(group, 0)
            self._round_counters[group] = n + 1
            tid = trace_id_for(group, n, namespace=self.trace_namespace)
            trace_ctx = SpanContext(
                tid, derive_span_id(tid, "reader.round", ""), hop=1
            )

        await self._send(
            protocol.with_trace(
                protocol.reseed(group, proto),
                trace_ctx.to_wire() if trace_ctx else None,
            )
        )
        challenge = await self._recv()
        if challenge.type == "ERROR":
            raise ProtocolError(challenge["code"], challenge["detail"])
        if challenge.type != "CHALLENGE":
            raise ProtocolError(
                "unexpected-frame", f"wanted CHALLENGE, got {challenge.type}"
            )

        frame_size = challenge["frame_size"]
        seeds = challenge["seeds"]
        air_before = self.timing.session_us(self.channel.stats)
        if challenge["protocol"] == "utrp":
            scan = self.reader.scan_utrp(self.channel, frame_size, seeds)
        else:
            scan = self.reader.scan_trp(self.channel, frame_size, seeds[0])
        elapsed_us = (
            self.timing.session_us(self.channel.stats)
            - air_before
            + self.extra_delay_us
        )

        if self.fault_injector is not None:
            action = self.fault_injector.on_frame("BITSTRING")
            if action.dropped:
                # The proof never leaves the reader; the server's
                # deadline fires and its verdict arrives unprompted.
                verdict = await self._recv()
                if verdict.type != "VERDICT":
                    raise ProtocolError(
                        "unexpected-frame",
                        f"wanted deadline VERDICT, got {verdict.type}",
                    )
                outcome = RoundOutcome(
                    group=group,
                    round_index=verdict["round"],
                    verdict=verdict["verdict"],
                    alarm=verdict["alarm"],
                    frame_size=frame_size,
                    elapsed_us=0.0,
                    mismatched_slots=verdict["mismatched_slots"],
                    bytes_sent=self.bytes_sent - sent_before,
                    bytes_received=self.bytes_received - received_before,
                )
                self._finish_round_span(trace_ctx, group, proto, outcome)
                return outcome
            elapsed_us += action.delay_us

        await self._send(
            protocol.bitstring_frame(
                group,
                challenge["round"],
                scan.bitstring,
                elapsed_us,
                scan.seeds_used,
            )
        )
        verdict = await self._recv()
        if verdict.type == "ERROR":
            raise ProtocolError(verdict["code"], verdict["detail"])
        if verdict.type != "VERDICT":
            raise ProtocolError(
                "unexpected-frame", f"wanted VERDICT, got {verdict.type}"
            )
        outcome = RoundOutcome(
            group=group,
            round_index=verdict["round"],
            verdict=verdict["verdict"],
            alarm=verdict["alarm"],
            frame_size=verdict["frame_size"],
            elapsed_us=elapsed_us,
            mismatched_slots=verdict["mismatched_slots"],
            bytes_sent=self.bytes_sent - sent_before,
            bytes_received=self.bytes_received - received_before,
        )
        self._finish_round_span(trace_ctx, group, proto, outcome)
        return outcome

    def _finish_round_span(
        self, trace_ctx, group: str, proto: str, outcome: RoundOutcome
    ) -> None:
        """Record the round's root span (when tracing is on).

        Digest-relevant fields are seed-derived only; byte counts ride
        in ``host_fields`` so a wire-framing change never perturbs the
        causal digest.
        """
        if trace_ctx is None:
            return
        self.tracer.span(
            "reader.round",
            group,
            # The local round counter fed the trace id; using it here
            # keeps the span self-consistent even if the server's
            # round numbering drifts from ours (shared groups).
            self._round_counters[group] - 1,
            trace_id=trace_ctx.trace_id,
            proto=proto,
            verdict=outcome.verdict,
            frame_size=int(outcome.frame_size),
            host_fields={
                "bytes_sent": outcome.bytes_sent,
                "bytes_received": outcome.bytes_received,
            },
        )

    async def run_rounds(
        self, group: str, rounds: int, proto: str = "trp"
    ) -> list:
        """``rounds`` sequential rounds on one group."""
        return [await self.run_round(group, proto) for _ in range(rounds)]
