"""Reader-side client for the monitoring service.

:class:`ReaderClient` is the honest remote reader of the paper's
deployment picture: it owns a physical channel (the tags actually in
its field), asks the server to reseed it, executes the challenge with
the stock :class:`~repro.rfid.reader.TrustedReader`, and ships the
occupancy bitstring back with its measured air time. It is usable both
as a library (drive one warehouse reader) and as the unit the load
generator (:mod:`repro.serve.loadgen`) multiplies into a simulated
fleet.

Two knobs exist purely to exercise the server's defences:

* ``extra_delay_us`` — a slow reader; its reported air time grows by
  this much per round, so a sufficiently slow UTRP scan trips the
  Alg. 5 timer and earns ``rejected-late`` (Theorem 5);
* ``fault_injector`` — a :class:`~repro.serve.netfaults.
  FrameFaultInjector`; dropped BITSTRING frames leave the server
  waiting into its deadline, delayed ones add wire latency on top of
  the scan.

Two more select the transport:

* ``wire_version`` — 1 (default) keeps the JSON framing; 2 opens with
  a HELLO offer and switches to the binary v2 framing when the server
  agrees, falling back to v1 — on the same connection after a
  recoverable refusal, or on a fresh one when the peer predates HELLO
  and hangs up;
* ``pipeline_depth`` — with v2 negotiated, :meth:`run_rounds` issues
  the next RESEED while the previous VERDICT is still in flight.
  Per-round session sequence numbers (echoed by the server, verified
  here) pin the reply order, so verdict/seed/bitstring sequences stay
  bit-for-bit identical to the sequential path. Depth degrades to 1
  whenever the connection ends up on v1.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs.tracing import SpanContext, derive_span_id, trace_id_for
from ..rfid.channel import SlottedChannel
from ..rfid.reader import TrustedReader
from ..rfid.timing import LinkTiming, UNIT_SLOTS
from . import protocol, wire
from .protocol import Frame, ProtocolError

__all__ = ["RoundOutcome", "ReaderClient"]


@dataclass(frozen=True)
class RoundOutcome:
    """What one wire round produced, as seen from the reader.

    Attributes:
        group: group the round ran against.
        round_index: server-assigned round number.
        verdict: the VERDICT frame's verdict string, or ``"dropped"``
            when the fault injector swallowed our proof and the server
            answered with its deadline verdict instead.
        alarm: whether the server raised an operator alarm.
        frame_size: the challenge's ``f``.
        elapsed_us: air time we reported (0 when the proof was dropped).
        mismatched_slots: server-counted disagreeing slots.
        bytes_sent / bytes_received: wire bytes this round moved in
            each direction, length prefixes included — the
            bytes-per-round measurement the wire-v2 work needs. Under
            pipelining, bytes are attributed at round completion, so
            per-round figures can shift between overlapping rounds
            while the totals stay exact.
        wall_s: wall-clock seconds from this round's RESEED to its
            VERDICT. Under pipelining rounds overlap, so summing
            ``wall_s`` overstates the campaign's wall time — the load
            generator times overlapped campaigns from outside instead.
    """

    group: str
    round_index: int
    verdict: str
    alarm: bool
    frame_size: int
    elapsed_us: float
    mismatched_slots: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    wall_s: float = 0.0


class _RoundState:
    """Client-local context for one in-flight round."""

    __slots__ = (
        "group",
        "proto",
        "seq",
        "trace_ctx",
        "trace_round",
        "sent_before",
        "received_before",
        "started",
        "frame_size",
        "elapsed_us",
    )

    def __init__(self, group: str, proto: str):
        self.group = group
        self.proto = proto
        self.seq: Optional[int] = None
        self.trace_ctx: Optional[SpanContext] = None
        self.trace_round = 0
        self.sent_before = 0
        self.received_before = 0
        self.started = 0.0
        self.frame_size = 0
        self.elapsed_us = 0.0


class ReaderClient:
    """One remote reader speaking ``repro.serve`` (v1 or negotiated v2)."""

    def __init__(
        self,
        host: str,
        port: int,
        channel: SlottedChannel,
        reader: Optional[TrustedReader] = None,
        timing: LinkTiming = UNIT_SLOTS,
        extra_delay_us: float = 0.0,
        fault_injector=None,
        tracer=None,
        trace_namespace: str = "",
        wire_version: int = 1,
        pipeline_depth: int = 1,
    ):
        """Args:
            host, port: where the service listens.
            channel: the physical population in this reader's field —
                the one thing the reader owns in the trust model.
            reader: scan implementation (honest by default).
            timing: link model used to report elapsed air time; must
                match the server's for timer parity.
            extra_delay_us: additional reported latency per round.
            fault_injector: optional frame-level fault source (see
                :mod:`repro.serve.netfaults`).
            tracer: optional :class:`~repro.obs.tracing.Tracer`; when
                given, every round roots a ``reader.round`` span and
                sends its context in the RESEED's ``trace`` envelope.
            trace_namespace: distinguishes this client's traces from
                other clients driving the *same* group (trace ids are
                per-(namespace, group, round)); leave empty when one
                client owns each group.
            wire_version: highest wire framing to offer (1 = never send
                HELLO, stay on JSON v1).
            pipeline_depth: rounds :meth:`run_rounds` keeps in flight;
                > 1 requires ``wire_version`` 2 (the seq numbers that
                make pipelining safe only ride on the v2 header).

        Raises:
            ValueError: on a bad knob combination.
        """
        if extra_delay_us < 0:
            raise ValueError("extra_delay_us must be >= 0")
        if wire_version not in protocol.SUPPORTED_WIRE_VERSIONS:
            raise ValueError(
                f"wire_version must be one of "
                f"{protocol.SUPPORTED_WIRE_VERSIONS}, got {wire_version}"
            )
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if pipeline_depth > 1 and wire_version < 2:
            raise ValueError("pipeline_depth > 1 requires wire_version 2")
        self.host = host
        self.port = port
        self.channel = channel
        self.reader = reader if reader is not None else TrustedReader()
        self.timing = timing
        self.extra_delay_us = extra_delay_us
        self.fault_injector = fault_injector
        self.tracer = tracer
        self.trace_namespace = trace_namespace
        self.wire_version = int(wire_version)
        self.pipeline_depth = int(pipeline_depth)
        self.negotiated_version = 1
        self.bytes_sent = 0
        self.bytes_received = 0
        self._codec = wire.WireV1
        self._next_seq = 0
        self._round_counters: Dict[str, int] = {}
        self._epochs: Dict[str, int] = {}
        self._stream: Optional[tuple] = None

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------

    async def connect(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._stream = (reader, writer)
        self._codec = wire.WireV1
        self.negotiated_version = 1
        if self.wire_version >= 2:
            await self._negotiate()

    async def close(self) -> None:
        if self._stream is not None:
            self._stream[1].close()
            try:
                await self._stream[1].wait_closed()
            except (ConnectionError, OSError):
                pass
            self._stream = None

    async def __aenter__(self) -> "ReaderClient":
        if self._stream is None:
            await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _negotiate(self) -> None:
        """HELLO exchange; every failure mode lands safely on v1.

        * offer dropped by the fault injector -> stay v1 (the server
          never saw it, so it never switches either);
        * server replies ERROR (v1-only build, disjoint versions) ->
          stay v1 on the same connection;
        * server predates HELLO entirely (typed ERROR then hang-up, or
          immediate close) -> reconnect plain v1;
        * server replies nonsense -> :class:`ProtocolError`.
        """
        offered = [
            v for v in protocol.SUPPORTED_WIRE_VERSIONS if v <= self.wire_version
        ]
        if self.fault_injector is not None:
            if self.fault_injector.on_frame("HELLO").dropped:
                return
        await self._send(protocol.hello_frame(offered))
        try:
            reply = await self._recv()
        except (ConnectionError, ProtocolError):
            reply = None
        if reply is not None and reply.type == "HELLO":
            versions = reply["versions"]
            if len(versions) != 1 or versions[0] not in offered:
                raise ProtocolError(
                    "unsupported-version",
                    f"server chose {versions} from our offer {offered}",
                )
            self._codec = wire.codec_for(versions[0])
            self.negotiated_version = versions[0]
            return
        if reply is not None and reply.type != "ERROR":
            raise ProtocolError(
                "unexpected-frame", f"wanted HELLO or ERROR, got {reply.type}"
            )
        if reply is None:
            # The peer hung up on our HELLO (a pre-negotiation build
            # answers unknown-type and closes): start over, silently v1.
            await self.close()
            reader, writer = await asyncio.open_connection(self.host, self.port)
            self._stream = (reader, writer)

    async def _send(self, frame: Frame) -> None:
        data = self._codec.encode(frame)
        self._stream[1].write(data)
        await self._stream[1].drain()
        self.bytes_sent += len(data)

    def _on_bytes(self, size: int) -> None:
        self.bytes_received += size

    async def _recv(self) -> Frame:
        frame = await self._codec.read(
            self._stream[0], on_bytes=self._on_bytes
        )
        if frame is None:
            raise ConnectionError("server closed the connection")
        return frame

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    @property
    def known_epochs(self) -> Dict[str, int]:
        """Per-group population epochs this client has observed (copy)."""
        return dict(self._epochs)

    async def update_membership(
        self,
        group: str,
        op: str,
        tag_ids,
        replacement_ids=None,
    ) -> int:
        """Apply a membership delta server-side; returns the new epoch.

        The request carries the epoch this client last observed for
        ``group`` (0 before any update), implementing the optimistic
        concurrency check: if another writer churned the group first,
        the server answers ``stale-epoch`` and nothing is applied.

        This is a *wire* operation only — the caller owns the physical
        channel and must commission/decommission the matching
        :class:`~repro.rfid.tag.Tag` objects itself (new tags start at
        counter 0 on both sides), or the next scan will disagree with
        the server's expectation.

        Raises:
            ProtocolError: on an ERROR reply (``stale-epoch``,
                ``bad-membership``, ``unknown-group``) or an
                out-of-protocol frame.
            ConnectionError: if the server hangs up mid-exchange.
        """
        if self._stream is None:
            await self.connect()
        seq: Optional[int] = None
        if self._codec.version >= 2:
            seq = self._next_seq
            self._next_seq += 1
        await self._send(
            protocol.with_seq(
                protocol.membership_frame(
                    group,
                    op,
                    tag_ids,
                    self._epochs.get(group, 0),
                    replacement_ids,
                ),
                seq,
            )
        )
        reply = await self._recv()
        if reply.type == "ERROR":
            raise ProtocolError(reply["code"], reply["detail"])
        if reply.type != "MEMBERSHIP":
            raise ProtocolError(
                "unexpected-frame",
                f"wanted MEMBERSHIP ack, got {reply.type}",
            )
        if seq is not None and reply.get("seq") != seq:
            raise ProtocolError(
                "seq-mismatch",
                f"MEMBERSHIP ack carries seq {reply.get('seq')}, "
                f"expected {seq}",
            )
        epoch = int(reply["epoch"])
        self._epochs[group] = epoch
        return epoch

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------

    async def run_round(self, group: str, proto: str = "trp") -> RoundOutcome:
        """One RESEED -> CHALLENGE -> scan -> BITSTRING -> VERDICT.

        Raises:
            ProtocolError: if the server answers with an ERROR frame or
                an out-of-protocol frame.
            ConnectionError: if the server hangs up mid-round.
        """
        state = await self._start_round(group, proto)
        outcome = await self._challenge_and_scan(state)
        if outcome is not None:
            return outcome
        return await self._finish_round(state)

    async def run_rounds(
        self, group: str, rounds: int, proto: str = "trp"
    ) -> List[RoundOutcome]:
        """``rounds`` rounds on one group, pipelined when negotiated.

        With ``pipeline_depth`` > 1 on a v2 connection, round ``k+1``'s
        RESEED goes out before round ``k``'s VERDICT has been read; the
        server's strict per-group alternation plus TCP ordering keep
        the reply sequence deterministic, and the echoed seq numbers
        prove it frame by frame. Rounds whose proof the fault injector
        dropped never pipeline — the server's unprompted deadline
        VERDICT must be consumed before the next RESEED may go out.
        """
        if self._stream is None:
            await self.connect()
        depth = self.pipeline_depth if self._codec.version >= 2 else 1
        if depth <= 1 or rounds <= 1:
            return [await self.run_round(group, proto) for _ in range(rounds)]
        outcomes: List[RoundOutcome] = []
        pending: Optional[_RoundState] = None
        for _ in range(rounds):
            state = await self._start_round(group, proto)
            if pending is not None:
                outcomes.append(await self._finish_round(pending))
                pending = None
            outcome = await self._challenge_and_scan(state)
            if outcome is not None:
                outcomes.append(outcome)
            else:
                pending = state
        if pending is not None:
            outcomes.append(await self._finish_round(pending))
        return outcomes

    async def _start_round(self, group: str, proto: str) -> _RoundState:
        """Open one round: allocate its identity and send the RESEED."""
        if self._stream is None:
            await self.connect()
        state = _RoundState(group, proto)
        state.sent_before = self.bytes_sent
        state.received_before = self.bytes_received
        state.started = time.perf_counter()

        # Trace identity is client-local and deterministic: the n-th
        # round this client runs against `group` is the same trace on
        # every run, whatever path (direct / gateway / failover retry)
        # serves it. The root span is recorded once the round ends, but
        # its id is a pure function of the trace, so the envelope can
        # name it up front.
        if self.tracer is not None:
            n = self._round_counters.get(group, 0)
            self._round_counters[group] = n + 1
            tid = trace_id_for(group, n, namespace=self.trace_namespace)
            state.trace_ctx = SpanContext(
                tid, derive_span_id(tid, "reader.round", ""), hop=1
            )
            state.trace_round = n
        if self._codec.version >= 2:
            state.seq = self._next_seq
            self._next_seq += 1

        # RESEED pins the population epoch only once this client has
        # itself churned the group: a never-updating client sends the
        # exact pre-churn bytes, and a churning one catches a failover
        # that restored an older population before any seeds go out.
        await self._send(
            protocol.with_seq(
                protocol.with_trace(
                    protocol.reseed(
                        group, proto, epoch=self._epochs.get(group)
                    ),
                    state.trace_ctx.to_wire() if state.trace_ctx else None,
                ),
                state.seq,
            )
        )
        return state

    def _check_seq(self, state: _RoundState, frame: Frame) -> None:
        """A v2 reply must echo the seq of the request it answers."""
        if state.seq is None:
            return
        if frame.get("seq") != state.seq:
            raise ProtocolError(
                "seq-mismatch",
                f"{frame.type} for {state.group!r} carries seq "
                f"{frame.get('seq')}, expected {state.seq}",
            )

    async def _challenge_and_scan(
        self, state: _RoundState
    ) -> Optional[RoundOutcome]:
        """CHALLENGE -> scan -> BITSTRING; the dropped-proof path ends
        the round here (returning its outcome), otherwise ``None`` and
        the VERDICT is left for :meth:`_finish_round`."""
        challenge = await self._recv()
        if challenge.type == "ERROR":
            raise ProtocolError(challenge["code"], challenge["detail"])
        if challenge.type != "CHALLENGE":
            raise ProtocolError(
                "unexpected-frame", f"wanted CHALLENGE, got {challenge.type}"
            )
        self._check_seq(state, challenge)

        frame_size = challenge["frame_size"]
        seeds = challenge["seeds"]
        state.frame_size = frame_size
        air_before = self.timing.session_us(self.channel.stats)
        if challenge["protocol"] == "utrp":
            scan = self.reader.scan_utrp(self.channel, frame_size, seeds)
        else:
            scan = self.reader.scan_trp(self.channel, frame_size, seeds[0])
        elapsed_us = (
            self.timing.session_us(self.channel.stats)
            - air_before
            + self.extra_delay_us
        )

        if self.fault_injector is not None:
            action = self.fault_injector.on_frame("BITSTRING")
            if action.dropped:
                # The proof never leaves the reader; the server's
                # deadline fires and its verdict arrives unprompted.
                verdict = await self._recv()
                if verdict.type != "VERDICT":
                    raise ProtocolError(
                        "unexpected-frame",
                        f"wanted deadline VERDICT, got {verdict.type}",
                    )
                self._check_seq(state, verdict)
                outcome = RoundOutcome(
                    group=state.group,
                    round_index=verdict["round"],
                    verdict=verdict["verdict"],
                    alarm=verdict["alarm"],
                    frame_size=frame_size,
                    elapsed_us=0.0,
                    mismatched_slots=verdict["mismatched_slots"],
                    bytes_sent=self.bytes_sent - state.sent_before,
                    bytes_received=self.bytes_received - state.received_before,
                    wall_s=time.perf_counter() - state.started,
                )
                self._finish_round_span(state, outcome)
                return outcome
            elapsed_us += action.delay_us

        state.elapsed_us = elapsed_us
        await self._send(
            protocol.with_seq(
                protocol.bitstring_frame(
                    state.group,
                    challenge["round"],
                    scan.bitstring,
                    elapsed_us,
                    scan.seeds_used,
                ),
                state.seq,
            )
        )
        return None

    async def _finish_round(self, state: _RoundState) -> RoundOutcome:
        """Consume one VERDICT and close out ``state``'s round."""
        verdict = await self._recv()
        if verdict.type == "ERROR":
            raise ProtocolError(verdict["code"], verdict["detail"])
        if verdict.type != "VERDICT":
            raise ProtocolError(
                "unexpected-frame", f"wanted VERDICT, got {verdict.type}"
            )
        self._check_seq(state, verdict)
        outcome = RoundOutcome(
            group=state.group,
            round_index=verdict["round"],
            verdict=verdict["verdict"],
            alarm=verdict["alarm"],
            frame_size=verdict["frame_size"],
            elapsed_us=state.elapsed_us,
            mismatched_slots=verdict["mismatched_slots"],
            bytes_sent=self.bytes_sent - state.sent_before,
            bytes_received=self.bytes_received - state.received_before,
            wall_s=time.perf_counter() - state.started,
        )
        self._finish_round_span(state, outcome)
        return outcome

    def _finish_round_span(
        self, state: _RoundState, outcome: RoundOutcome
    ) -> None:
        """Record the round's root span (when tracing is on).

        Digest-relevant fields are seed-derived only; byte counts ride
        in ``host_fields`` so a wire-framing change never perturbs the
        causal digest.
        """
        if state.trace_ctx is None:
            return
        self.tracer.span(
            "reader.round",
            state.group,
            # The local round counter fed the trace id; using it here
            # keeps the span self-consistent even if the server's
            # round numbering drifts from ours (shared groups).
            state.trace_round,
            trace_id=state.trace_ctx.trace_id,
            proto=state.proto,
            verdict=outcome.verdict,
            frame_size=int(outcome.frame_size),
            host_fields={
                "bytes_sent": outcome.bytes_sent,
                "bytes_received": outcome.bytes_received,
            },
        )
