"""Per-connection session state machine for the monitoring service.

One session is one reader connection. Its lifecycle is a strict
alternation the server enforces frame by frame::

    WAIT_REQUEST --RESEED--> CHALLENGED --BITSTRING--> WAIT_REQUEST
         |                        |
         |  (malformed frame)     |  (deadline expires)
         +--> ERROR, stay         +--> VERDICT rejected-late (Thm. 5)

Degradation is *per session*: a malformed or out-of-order frame earns
an ERROR reply and resets the round, never an unhandled exception; only
transport-level desync (a garbled length prefix, an oversize
declaration, EOF mid-frame) or an exhausted error budget closes the
connection, because after those the byte stream can no longer be
re-framed safely.

Timer enforcement is the paper's Alg. 5 line 5 made real: the UTRP
challenge's ``timer`` (simulated microseconds of air time) maps to an
``asyncio`` deadline on the BITSTRING read via
:attr:`SessionConfig.wall_us_per_s`, and a proof that misses the
deadline — or arrives carrying more elapsed air time than the timer —
takes the Theorem-5 path: verdict ``rejected-late``, operator alarm.
The clock is injectable so the deadline logic is testable without
sleeping against the host's scheduler.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..rfid.reader import ScanResult
from . import protocol, wire
from .protocol import Frame, ProtocolError

__all__ = ["SessionConfig", "SessionStats", "ServeSession"]


@dataclass(frozen=True)
class SessionConfig:
    """Knobs governing one session's patience and strictness.

    Attributes:
        reply_timeout_s: transport guard — hard wall-clock ceiling on
            waiting for a BITSTRING, whatever the protocol timer says.
        idle_timeout_s: how long to wait for the next RESEED before
            evicting an idle client (``None`` = forever).
        frame_idle_timeout_s: how long the peer may stall *inside* a
            frame once its first byte arrived. A peer that dribbles a
            length prefix byte-by-byte would otherwise hold a session
            slot forever; past this budget the read fails with a typed
            ``idle-read`` error and the slot is freed. ``None``
            disables the guard.
        max_frame_bytes: per-session receive cap, defaulting to the
            protocol-wide :data:`~repro.serve.protocol.MAX_FRAME_BYTES`.
        max_errors: recoverable protocol errors tolerated before the
            session is evicted as hostile or hopelessly confused.
        wall_us_per_s: conversion from wall seconds to simulated
            microseconds. When positive, the UTRP timer becomes a real
            ``asyncio`` deadline (``timer_us / wall_us_per_s`` seconds)
            and the wall-clock wait contributes to the elapsed time the
            verdict judges. When 0 (default) the server trusts the
            reader's self-reported air time — the deterministic
            loopback mode the equivalence tests pin.
        clock: monotonic time source, injectable for deterministic
            timer tests.
    """

    reply_timeout_s: float = 30.0
    idle_timeout_s: Optional[float] = None
    frame_idle_timeout_s: Optional[float] = 10.0
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    max_errors: int = 5
    wall_us_per_s: float = 0.0
    clock: Callable[[], float] = time.monotonic


@dataclass
class SessionStats:
    """Counters one session accumulates (mirrored into obs metrics)."""

    rounds: int = 0
    verdicts: int = 0
    timeouts: int = 0
    protocol_errors: int = 0
    frames_in: int = 0
    frames_out: int = 0


class SessionClosed(Exception):
    """Internal: the session must terminate (transport desync or
    exhausted error budget)."""


class ServeSession:
    """Drives one reader connection against the hosted groups.

    The service (``repro.serve.server``) owns group state and
    backpressure primitives; the session owns only conversation state,
    so a crashed session never corrupts a group.
    """

    def __init__(
        self,
        service,
        session_id: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        config: Optional[SessionConfig] = None,
    ):
        self.service = service
        self.session_id = session_id
        self.reader = reader
        self.writer = writer
        self.config = config if config is not None else SessionConfig()
        self.stats = SessionStats()
        self.scope = f"serve/session-{session_id:05d}"
        # Every session opens speaking v1; a HELLO exchange may switch
        # the codec mid-connection (see _negotiate).
        self.codec = wire.WireV1
        self._reply_seq: Optional[int] = None

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------

    async def _send(self, frame: Frame) -> None:
        # Replies echo the seq of the request that prompted them, so a
        # pipelining client can pin reply order. (The v1 codec strips
        # the field again; only v2 carries it on the wire.)
        frame = protocol.with_seq(frame, self._reply_seq)
        self.writer.write(self.codec.encode(frame))
        await self.writer.drain()
        self.stats.frames_out += 1
        self.service.observe_frame(self, frame.type, "out")

    async def _recv(self, timeout: Optional[float]) -> Optional[Frame]:
        """One frame, or ``None`` on EOF.

        Raises:
            SessionClosed: when the stream can no longer be re-framed.
            asyncio.TimeoutError: when ``timeout`` expires.
        """
        try:
            frame = await asyncio.wait_for(
                self.codec.read(
                    self.reader,
                    self.config.max_frame_bytes,
                    idle_timeout_s=self.config.frame_idle_timeout_s,
                ),
                timeout=timeout,
            )
        except ProtocolError as exc:
            # Length-prefix level damage: the stream is desynced, no
            # later frame boundary can be trusted. Tell the peer, then
            # hang up.
            self.stats.protocol_errors += 1
            self.service.observe_error(self, exc.code)
            try:
                await self._send(protocol.error_frame(exc.code, exc.detail))
            except (ConnectionError, ProtocolError):
                pass
            raise SessionClosed(exc.code) from exc
        if frame is not None:
            self.stats.frames_in += 1
            self.service.observe_frame(self, frame.type, "in")
            if frame.get("seq") is not None:
                self._reply_seq = int(frame["seq"])
        return frame

    async def _negotiate(self, offer: Frame) -> None:
        """HELLO exchange: pick the highest shared wire version.

        The acknowledging HELLO goes out in the *current* framing; only
        after it is flushed does the session switch codecs. A disjoint
        offer earns a recoverable ``unsupported-version`` ERROR and the
        session simply stays on its current framing.
        """
        chosen = protocol.choose_wire_version(
            offer["versions"], self.service.wire_versions
        )
        if chosen is None:
            await self._recoverable_error(
                "unsupported-version",
                f"no common wire version in {offer['versions']}; "
                f"server speaks {list(self.service.wire_versions)}",
            )
            return
        await self._send(protocol.hello_frame([chosen]))
        self.codec = wire.codec_for(chosen)
        self.service.observe_negotiation(self, chosen)

    async def _recoverable_error(self, code: str, detail: str) -> None:
        """ERROR reply for a violation with intact framing; evict after
        ``max_errors`` of them."""
        self.stats.protocol_errors += 1
        self.service.observe_error(self, code)
        await self._send(protocol.error_frame(code, detail))
        if self.stats.protocol_errors >= self.config.max_errors:
            raise SessionClosed("error-budget")

    # ------------------------------------------------------------------
    # the conversation
    # ------------------------------------------------------------------

    async def run(self) -> None:
        """Serve frames until EOF, eviction, or transport desync."""
        self.service.observe_session(self, "open")
        try:
            while True:
                try:
                    frame = await self._recv(self.config.idle_timeout_s)
                except asyncio.TimeoutError:
                    await self._send(
                        protocol.error_frame("idle-timeout", "no request in time")
                    )
                    break
                if frame is None:
                    break
                if frame.type == "RESEED":
                    await self._serve_round(frame)
                elif frame.type == "MEMBERSHIP":
                    await self._apply_membership(frame)
                elif frame.type == "HELLO":
                    await self._negotiate(frame)
                elif frame.type == "ERROR":
                    # A peer-side complaint; log and carry on.
                    self.service.observe_error(self, f"peer:{frame['code']}")
                else:
                    await self._recoverable_error(
                        "unexpected-frame",
                        f"{frame.type} is not valid while awaiting a request",
                    )
        except SessionClosed:
            pass
        except ConnectionError:
            pass
        finally:
            self.service.observe_session(self, "close")
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_round(self, request: Frame) -> None:
        """One RESEED -> CHALLENGE -> BITSTRING -> VERDICT exchange."""
        group_name = request["group"]
        proto = request["protocol"]
        group = self.service.groups.get(group_name)
        if group is None:
            await self._recoverable_error(
                "unknown-group", f"no group named {group_name!r}"
            )
            return
        if proto not in ("trp", "utrp"):
            await self._recoverable_error(
                "bad-field", f"protocol must be 'trp' or 'utrp', got {proto!r}"
            )
            return
        if proto == "utrp" and not group.monitor.counter_tags:
            await self._recoverable_error(
                "unknown-group",
                f"group {group_name!r} has no counter tags; UTRP unavailable",
            )
            return
        epoch = request.get("epoch")
        if epoch is not None and int(epoch) != group.monitor.population_epoch:
            # The reader's channel reflects another population version;
            # judging its scan against this set would be meaningless.
            await self._recoverable_error(
                "stale-epoch",
                f"group {group_name!r} is at population epoch "
                f"{group.monitor.population_epoch}, request pinned {epoch}",
            )
            return

        # Rounds on one group serialise (seed issuance and counter
        # commits are one atomic step per round); total in-flight
        # rounds are bounded service-wide.
        async with group.lock, self.service.inflight:
            await self._challenged_round(group, proto, request.get("trace"))

    async def _apply_membership(self, request: Frame) -> None:
        """One MEMBERSHIP -> MEMBERSHIP-ack exchange.

        The request carries the epoch the sender last observed
        (optimistic concurrency): a mismatch means the sender's view of
        the population is stale — some other writer got there first —
        and earns a recoverable ``stale-epoch`` ERROR instead of a
        silent lost update. The delta itself applies under the group
        lock, serialised against in-flight rounds, so a challenge is
        always issued against a consistent (pre- or post-delta) set,
        never a half-applied one.
        """
        group_name = request["group"]
        group = self.service.groups.get(group_name)
        if group is None:
            await self._recoverable_error(
                "unknown-group", f"no group named {group_name!r}"
            )
            return
        async with group.lock:
            current = group.monitor.population_epoch
            if int(request["epoch"]) != current:
                await self._recoverable_error(
                    "stale-epoch",
                    f"group {group_name!r} is at population epoch {current}, "
                    f"update was built against {request['epoch']}",
                )
                return
            try:
                new_epoch = self.service.apply_membership(
                    group_name,
                    request["op"],
                    request["tag_ids"],
                    request.get("replacement_ids"),
                )
            except (KeyError, ValueError) as exc:
                await self._recoverable_error(
                    "bad-membership", f"membership delta rejected: {exc}"
                )
                return
        await self._send(
            protocol.membership_frame(
                group_name,
                request["op"],
                request["tag_ids"],
                new_epoch,
                request.get("replacement_ids"),
            )
        )

    async def _challenged_round(self, group, proto: str, trace=None) -> None:
        cfg = self.config
        monitor = group.monitor
        round_index = group.rounds_issued
        group.rounds_issued += 1
        self.stats.rounds += 1

        if proto == "trp":
            challenge = monitor.issuer.trp_challenge(group.trp_frame_size)
            seeds = [challenge.seed]
            timer_us = None
        else:
            frame_size, timer_us = group.utrp_plan()
            challenge = monitor.issuer.utrp_challenge(frame_size, timer_us)
            seeds = list(challenge.seeds)
        await self._send(
            protocol.challenge_frame(
                group.name, proto, round_index, challenge.frame_size, seeds, timer_us
            )
        )
        issued_at = cfg.clock()

        # The paper's timer as a real deadline: the BITSTRING must land
        # within the scaled timer (UTRP) and the transport guard (both).
        deadline = cfg.reply_timeout_s
        if timer_us is not None and cfg.wall_us_per_s > 0.0:
            deadline = min(deadline, timer_us / cfg.wall_us_per_s)
        try:
            reply = await self._recv(deadline)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            result = monitor.register_remote_timeout(
                proto.upper(),
                challenge.frame_size,
                elapsed=(cfg.clock() - issued_at) * max(cfg.wall_us_per_s, 1.0),
            )
            self.stats.verdicts += 1
            self.service.observe_verdict(
                group,
                proto,
                result,
                timed_out=True,
                round_index=round_index,
                timer_us=timer_us,
                elapsed_us=result.elapsed,
                trace=trace,
            )
            try:
                await self._send(
                    protocol.verdict_frame(
                        group.name,
                        round_index,
                        result.verdict.value,
                        challenge.frame_size,
                        0,
                        result.elapsed,
                        result.verdict.alarm,
                    )
                )
            finally:
                group.timeouts += 1
            return
        if reply is None:
            raise SessionClosed("eof-mid-round")
        if (
            reply.type != "BITSTRING"
            or reply["group"] != group.name
            or reply["round"] != round_index
        ):
            await self._recoverable_error(
                "unexpected-frame",
                f"expected BITSTRING for {group.name!r} round {round_index}, "
                f"got {reply.type}",
            )
            return

        try:
            bits = protocol.bits_to_array(reply["bits"])
        except ProtocolError as exc:
            await self._recoverable_error(exc.code, exc.detail)
            return
        elapsed_us = float(reply["elapsed_us"])
        if cfg.wall_us_per_s > 0.0:
            wall_us = (cfg.clock() - issued_at) * cfg.wall_us_per_s
            elapsed_us = max(elapsed_us, wall_us)
        scan = ScanResult(
            bitstring=bits,
            slots_used=int(bits.size),
            seeds_used=int(reply["seeds_used"]),
        )
        if proto == "trp":
            report = monitor.check_trp(
                None, challenge=challenge, scan_fn=lambda _c: scan
            )
        else:
            report = monitor.check_utrp(
                None,
                challenge=challenge,
                scan_fn=lambda _c: (scan, elapsed_us),
            )
        result = report.result
        self.stats.verdicts += 1
        # SLO latency is the reported air time, not ``result.elapsed``:
        # TRP verification never judges timing, so its result carries
        # elapsed 0 — but the round still took ``elapsed_us`` of
        # (seed-derived) air, which is what the latency SLO measures.
        self.service.observe_verdict(
            group,
            proto,
            result,
            round_index=round_index,
            timer_us=timer_us,
            elapsed_us=elapsed_us,
            trace=trace,
        )
        # Record the report only once the VERDICT frame is flushed (or
        # the send failed for good): pollers treat the report count as
        # "verdicts delivered" and must not observe a round whose reply
        # is still in the socket buffer.
        try:
            await self._send(
                protocol.verdict_frame(
                    group.name,
                    round_index,
                    result.verdict.value,
                    result.frame_size,
                    len(result.mismatched_slots),
                    result.elapsed,
                    result.verdict.alarm,
                )
            )
        finally:
            group.reports.append(report)
