"""Open-loop load generation against the monitoring service.

The ROADMAP's north star is a serving system, and serving claims need
numbers: how many monitoring rounds per second one service instance
sustains, and what a round's latency distribution looks like under
concurrency. :func:`run_loadgen` drives a fleet of
:class:`~repro.serve.client.ReaderClient` sessions — optionally
self-hosting a service on loopback — and reports throughput,
p50/p95/p99 round latency, timeout and error counts as a
``repro.obs.bench/v1`` record (the same schema every other perf
trajectory in this repo accumulates), conventionally written to
``BENCH_serve.json``.

Session shape: ``sessions`` independent connections (default one per
group) each run ``rounds`` sequential rounds against their group.
Arrivals are open-loop at ``arrival_rate`` sessions/second (0 = all at
once) with ``concurrency`` capping how many are in flight — so the
generator can model both a thundering herd and a steady drizzle.

Load groups default to plain (counter-free) TRP tags so any number of
sessions can share a group: counter-tag populations are stateful and
two readers holding separate copies of one group would desynchronise
the mirror. UTRP load therefore pins one session per group.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.bench import make_bench_record
from ..rfid.bitstring import empty_bitstring
from ..rfid.channel import SlottedChannel
from ..rfid.ids import random_tag_ids
from ..rfid.reader import ScanResult
from ..rfid.tag import Tag
from ..simulation.rng import derive_seed
from .client import ReaderClient
from .protocol import ProtocolError
from .server import MonitoringService
from .session import SessionConfig

__all__ = ["LoadgenConfig", "LoadgenResult", "run_loadgen", "format_loadgen_result"]

#: Default master seed, matching the experiment grid's.
DEFAULT_SEED = 20080617

#: Seed-space dimension for membership churn (shared with the fleet's
#: churn plans and the churn experiment).
_CHURN_DIMENSION = 53


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation campaign's shape.

    Attributes:
        groups: hosted tag groups (only used when self-hosting).
        rounds: rounds each session runs.
        sessions: total sessions; default one per group.
        concurrency: max sessions in flight at once.
        arrival_rate: session arrivals per second; 0 = all at once.
        population / tolerance / confidence: per-group ``(n, m, alpha)``.
        protocol: ``"trp"`` (default) or ``"utrp"``; UTRP forces one
            session per group (stateful counters).
        seed: master seed — group populations and issuers derive from
            it, so two runs against the same config agree on verdicts.
        group_prefix: group names are ``{prefix}-{index:03d}``; use
            ``"group"`` to aim at a ``python -m repro serve`` instance.
        reader: ``"honest"`` (default) simulates the physical scan;
            ``"null"`` skips population building and answers every
            challenge with an all-zeros bitstring immediately — a
            benchmarking mode that makes the *server side* the measured
            work (the shard scaling bench uses it).
        wire_version: wire framing the readers offer — 1 (default)
            stays on JSON; 2 negotiates the binary framing.
        pipeline_depth: rounds each session keeps in flight (> 1
            requires ``wire_version`` 2; see
            :meth:`~repro.serve.client.ReaderClient.run_rounds`).
        churn_rate: membership updates per round each session emits
            (an accumulator, so fractional rates interleave). Each
            update is a ``replace`` — one live tag decommissioned, a
            fresh one commissioned in the same delta — so ``n`` and the
            planned frame size stay fixed while the tag *set* (and the
            population epoch) moves. The physical channel is mutated in
            lockstep, so verdicts stay ``intact``. Requires the honest
            reader, sequential rounds (``pipeline_depth`` 1) and at
            most one session per group (the churner owns its group's
            membership view).

    Raises:
        ValueError: on non-positive shape parameters or a UTRP session
            count exceeding the group count.
    """

    groups: int = 8
    rounds: int = 3
    sessions: Optional[int] = None
    concurrency: int = 8
    arrival_rate: float = 0.0
    population: int = 100
    tolerance: int = 2
    confidence: float = 0.9
    protocol: str = "trp"
    seed: int = DEFAULT_SEED
    group_prefix: str = "load"
    counter_tags: Optional[bool] = None
    reader: str = "honest"
    wire_version: int = 1
    pipeline_depth: int = 1
    churn_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("groups", "rounds", "concurrency", "population"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0")
        if self.protocol not in ("trp", "utrp"):
            raise ValueError("protocol must be 'trp' or 'utrp'")
        if self.reader not in ("honest", "null"):
            raise ValueError("reader must be 'honest' or 'null'")
        if self.wire_version not in (1, 2):
            raise ValueError("wire_version must be 1 or 2")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.pipeline_depth > 1 and self.wire_version < 2:
            raise ValueError("pipeline_depth > 1 requires wire_version 2")
        if self.sessions is not None and self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.churn_rate < 0:
            raise ValueError("churn_rate must be >= 0")
        if self.churn_rate > 0:
            if self.reader != "honest":
                raise ValueError("churn needs the honest reader")
            if self.pipeline_depth > 1:
                raise ValueError("churn requires pipeline_depth 1")
            if self.total_sessions > self.groups:
                raise ValueError(
                    "churn needs one session per group at most (the "
                    "churner owns its group's membership view)"
                )
        if self.effective_counter_tags and self.total_sessions > self.groups:
            raise ValueError(
                "counter-tag load needs one session per group at most "
                "(counter-tag populations are stateful)"
            )

    @property
    def total_sessions(self) -> int:
        return self.sessions if self.sessions is not None else self.groups

    @property
    def effective_counter_tags(self) -> bool:
        """Whether the load populations carry the UTRP counter.

        Defaults to "only for UTRP" (stateless TRP groups let any
        number of sessions share a group); set ``counter_tags=True``
        when aiming at a service whose groups were created with
        counters — e.g. ``python -m repro serve``.
        """
        if self.counter_tags is not None:
            return self.counter_tags
        return self.protocol == "utrp"


@dataclass
class LoadgenResult:
    """Everything one campaign measured.

    ``record`` is the schema-valid ``repro.obs.bench/v1`` dict; the
    scalar fields are conveniences for assertions and the CLI report.
    """

    rounds_completed: int
    verdict_counts: Dict[str, int]
    protocol_errors: int
    timeouts: int
    wall_s_total: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    bytes_sent_total: int = 0
    bytes_received_total: int = 0
    bytes_per_round: float = 0.0
    wire_version: int = 1
    pipeline_depth: int = 1
    churn_rate: float = 0.0
    membership_updates: int = 0
    population_epochs: Dict[str, int] = field(default_factory=dict)
    record: dict = field(default_factory=dict)
    per_endpoint: List[dict] = field(default_factory=list)

    @property
    def intact_rounds(self) -> int:
        return self.verdict_counts.get("intact", 0)


def _group_name(cfg: LoadgenConfig, index: int) -> str:
    return f"{cfg.group_prefix}-{index:03d}"


class _NullReader:
    """A reader that answers instantly with an all-zeros bitstring.

    The benchmarking counterpart of :class:`~repro.rfid.reader.
    TrustedReader`: no slot is polled, so client-side cost per round is
    one array allocation and the wire — the measured work is the
    server's.
    """

    name = "null-reader"

    def scan_trp(self, channel, frame_size: int, seed: int) -> ScanResult:
        return ScanResult(
            bitstring=empty_bitstring(frame_size),
            slots_used=frame_size,
            seeds_used=1,
        )

    def scan_utrp(self, channel, frame_size: int, seeds) -> ScanResult:
        return ScanResult(
            bitstring=empty_bitstring(frame_size),
            slots_used=frame_size,
            seeds_used=1,
        )


@dataclass
class _EndpointStats:
    """Per-endpoint accumulation, merged after the campaign."""

    host: str
    port: int
    latencies: List[float] = field(default_factory=list)
    air_us: List[float] = field(default_factory=list)
    verdicts: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    sessions: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    membership_updates: int = 0
    epochs: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> dict:
        wall = float(sum(self.latencies))
        rounds = len(self.latencies)
        return {
            "host": self.host,
            "port": self.port,
            "sessions": self.sessions,
            "rounds": rounds,
            "verdicts": dict(sorted(self.verdicts.items())),
            "protocol_errors": len(self.errors),
            "round_wall_s_total": wall,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "bytes_per_round": (
                (self.bytes_sent + self.bytes_received) / rounds
                if rounds
                else 0.0
            ),
            "bytes_sent_per_round": (
                self.bytes_sent / rounds if rounds else 0.0
            ),
            "bytes_received_per_round": (
                self.bytes_received / rounds if rounds else 0.0
            ),
        }


async def _churn_replace(
    cfg: LoadgenConfig,
    client: ReaderClient,
    group: str,
    channel: SlottedChannel,
    rng: np.random.Generator,
) -> int:
    """Replace one live tag over the wire, mutating the channel in step.

    The server is updated first (a failed update raises before the
    physical population moves), then the replaced tag leaves the
    channel and a factory-fresh one — counter at zero, matching the
    server's commission default — joins it, so the next round's scan
    agrees with the server's new expectation and verdicts stay intact.
    """
    tags = channel.tags
    live_ids = {tag.tag_id for tag in tags}
    victim = tags[int(rng.integers(0, len(tags)))]
    while True:
        fresh = int(random_tag_ids(1, rng)[0])
        if fresh not in live_ids:
            break
    epoch = await client.update_membership(
        group, "replace", [victim.tag_id], replacement_ids=[fresh]
    )
    tags.remove(victim)
    tags.append(Tag(fresh, uses_counter=cfg.effective_counter_tags))
    return epoch


async def _run_session(
    cfg: LoadgenConfig,
    stats: "_EndpointStats",
    session_index: int,
    gate: asyncio.Semaphore,
    start_at: float,
    t0: float,
    tracer=None,
) -> None:
    delay = start_at - (time.perf_counter() - t0)
    if delay > 0:
        await asyncio.sleep(delay)
    group_index = session_index % cfg.groups
    if cfg.reader == "null":
        channel = SlottedChannel([])
        reader = _NullReader()
    else:
        population = MonitoringService.build_population_for(
            cfg.population,
            seed=cfg.seed + group_index,
            counter_tags=cfg.effective_counter_tags,
        )
        channel = SlottedChannel(population.tags)
        reader = None
    async with gate:
        stats.sessions += 1
        client = ReaderClient(
            stats.host,
            stats.port,
            channel,
            reader=reader,
            tracer=tracer,
            # Sessions can share a group (stateless TRP), so traces are
            # namespaced per session; the session index is
            # deterministic, so trace ids still are.
            trace_namespace=f"session-{session_index}",
            wire_version=cfg.wire_version,
            pipeline_depth=cfg.pipeline_depth,
        )
        group = _group_name(cfg, group_index)
        try:
            async with client:
                if cfg.pipeline_depth > 1:
                    # Overlapped rounds: per-round latency is the
                    # client-measured RESEED->VERDICT wall time.
                    for outcome in await client.run_rounds(
                        group, cfg.rounds, cfg.protocol
                    ):
                        stats.latencies.append(outcome.wall_s)
                        stats.air_us.append(outcome.elapsed_us)
                        stats.verdicts[outcome.verdict] = (
                            stats.verdicts.get(outcome.verdict, 0) + 1
                        )
                        stats.bytes_sent += outcome.bytes_sent
                        stats.bytes_received += outcome.bytes_received
                else:
                    churn_rng = (
                        np.random.default_rng(
                            derive_seed(
                                cfg.seed, _CHURN_DIMENSION, group_index
                            )
                        )
                        if cfg.churn_rate > 0
                        else None
                    )
                    churn_acc = 0.0
                    for _ in range(cfg.rounds):
                        began = time.perf_counter()
                        outcome = await client.run_round(group, cfg.protocol)
                        stats.latencies.append(time.perf_counter() - began)
                        stats.air_us.append(outcome.elapsed_us)
                        stats.verdicts[outcome.verdict] = (
                            stats.verdicts.get(outcome.verdict, 0) + 1
                        )
                        stats.bytes_sent += outcome.bytes_sent
                        stats.bytes_received += outcome.bytes_received
                        if churn_rng is None:
                            continue
                        churn_acc += cfg.churn_rate
                        while churn_acc >= 1.0:
                            churn_acc -= 1.0
                            epoch = await _churn_replace(
                                cfg, client, group, channel, churn_rng
                            )
                            stats.membership_updates += 1
                            stats.epochs[group] = epoch
        except (ProtocolError, ConnectionError, OSError) as exc:
            stats.errors.append(f"session {session_index}: {exc}")


async def _run_loadgen_async(
    cfg: LoadgenConfig,
    host: Optional[str],
    port: Optional[int],
    obs=None,
    session_config: Optional[SessionConfig] = None,
    endpoints: Optional[Sequence[Tuple[str, int]]] = None,
    tracer=None,
) -> LoadgenResult:
    if endpoints is not None and host is not None:
        raise ValueError("pass either host/port or endpoints, not both")
    service: Optional[MonitoringService] = None
    if endpoints is None and host is None:
        service = MonitoringService(
            session_config=session_config,
            max_sessions=max(256, cfg.total_sessions + 8),
            max_inflight=max(64, cfg.concurrency),
            obs=obs,
        )
        for i in range(cfg.groups):
            service.create_group(
                _group_name(cfg, i),
                cfg.population,
                cfg.tolerance,
                cfg.confidence,
                seed=cfg.seed + i,
                counter_tags=cfg.effective_counter_tags,
            )
        await service.start()
        host, port = "127.0.0.1", service.port
    if endpoints is None:
        endpoints = [(host, port)]
    if not endpoints:
        raise ValueError("endpoints must be non-empty")

    # One stats bucket per endpoint; session i round-robins onto
    # endpoint i % len(endpoints), and the campaign totals are the
    # merge of the buckets.
    targets = [_EndpointStats(host=h, port=p) for h, p in endpoints]
    gate = asyncio.Semaphore(cfg.concurrency)
    t0 = time.perf_counter()
    spacing = 1.0 / cfg.arrival_rate if cfg.arrival_rate > 0 else 0.0
    try:
        await asyncio.gather(
            *(
                _run_session(
                    cfg,
                    targets[i % len(targets)],
                    i,
                    gate,
                    i * spacing,
                    t0,
                    tracer=tracer,
                )
                for i in range(cfg.total_sessions)
            )
        )
    finally:
        wall_total = time.perf_counter() - t0
        if service is not None:
            await service.close()

    latencies: List[float] = []
    air_us: List[float] = []
    verdicts: Dict[str, int] = {}
    errors: List[str] = []
    bytes_sent_total = 0
    bytes_received_total = 0
    membership_updates = 0
    population_epochs: Dict[str, int] = {}
    for stats in targets:
        latencies.extend(stats.latencies)
        air_us.extend(stats.air_us)
        for verdict, count in stats.verdicts.items():
            verdicts[verdict] = verdicts.get(verdict, 0) + count
        errors.extend(stats.errors)
        bytes_sent_total += stats.bytes_sent
        bytes_received_total += stats.bytes_received
        membership_updates += stats.membership_updates
        for group, epoch in stats.epochs.items():
            population_epochs[group] = max(
                population_epochs.get(group, 0), epoch
            )
    per_endpoint = [stats.summary() for stats in targets]
    bytes_per_round = (
        (bytes_sent_total + bytes_received_total) / len(latencies)
        if latencies
        else 0.0
    )

    lat = np.asarray(latencies, dtype=float)
    p50, p95, p99 = (
        (float(np.percentile(lat, q)) for q in (50, 95, 99))
        if lat.size
        else (0.0, 0.0, 0.0)
    )
    timeouts = verdicts.get("rejected-late", 0)
    timings = [
        {
            "name": "serve.loadgen.round",
            "kind": "serve-loadgen",
            "reps": max(1, int(lat.size)),
            "wall_s_total": float(lat.sum()),
            "wall_s_mean": float(lat.mean()) if lat.size else 0.0,
            "wall_s_min": float(lat.min()) if lat.size else 0.0,
            "wall_s_max": float(lat.max()) if lat.size else 0.0,
            "sim_air_us_total": float(sum(air_us)),
            "wall_s_p50": p50,
            "wall_s_p95": p95,
            "wall_s_p99": p99,
            "bytes_sent_total": bytes_sent_total,
            "bytes_received_total": bytes_received_total,
            "bytes_per_round": bytes_per_round,
            "bytes_sent_per_round": (
                bytes_sent_total / len(latencies) if latencies else 0.0
            ),
            "bytes_received_per_round": (
                bytes_received_total / len(latencies) if latencies else 0.0
            ),
            "wire_version": cfg.wire_version,
            "pipeline_depth": cfg.pipeline_depth,
        },
        {
            "name": "serve.loadgen.campaign",
            "kind": "serve-loadgen",
            "reps": 1,
            "wall_s_total": wall_total,
            "wall_s_mean": wall_total,
            "wall_s_min": wall_total,
            "wall_s_max": wall_total,
            "sim_air_us_total": float(sum(air_us)),
            "sessions": cfg.total_sessions,
            "concurrency": cfg.concurrency,
            "rounds_per_session": cfg.rounds,
            "protocol": cfg.protocol,
            "wire_version": cfg.wire_version,
            "pipeline_depth": cfg.pipeline_depth,
            # For core-aware CI gates (check_serve_wire.py): a starved
            # host cannot be held to the full throughput target.
            "cpu_count": os.cpu_count() or 1,
            "throughput_rps": (len(latencies) / wall_total)
            if wall_total > 0
            else 0.0,
            "verdicts": dict(sorted(verdicts.items())),
            "timeouts": timeouts,
            "protocol_errors": len(errors),
            "error_samples": errors[:5],
        },
    ]
    if len(per_endpoint) > 1:
        timings[1]["endpoints"] = per_endpoint
    if cfg.churn_rate > 0:
        # Churn-free records stay byte-identical to the pre-population
        # schema; churned campaigns document the knob and its effect.
        timings[1]["churn_rate"] = cfg.churn_rate
        timings[1]["membership_updates"] = membership_updates
        timings[1]["population_epochs"] = dict(
            sorted(population_epochs.items())
        )
    record = make_bench_record(timings, quick=False, label="serve-loadgen")
    return LoadgenResult(
        rounds_completed=len(latencies),
        verdict_counts=dict(verdicts),
        protocol_errors=len(errors),
        timeouts=timeouts,
        wall_s_total=wall_total,
        throughput_rps=(len(latencies) / wall_total) if wall_total > 0 else 0.0,
        latency_p50_ms=p50 * 1e3,
        latency_p95_ms=p95 * 1e3,
        latency_p99_ms=p99 * 1e3,
        bytes_sent_total=bytes_sent_total,
        bytes_received_total=bytes_received_total,
        bytes_per_round=bytes_per_round,
        wire_version=cfg.wire_version,
        pipeline_depth=cfg.pipeline_depth,
        churn_rate=cfg.churn_rate,
        membership_updates=membership_updates,
        population_epochs=dict(sorted(population_epochs.items())),
        record=record,
        per_endpoint=per_endpoint,
    )


def run_loadgen(
    config: Optional[LoadgenConfig] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    obs=None,
    session_config: Optional[SessionConfig] = None,
    endpoints: Optional[Sequence[Tuple[str, int]]] = None,
    tracer=None,
) -> LoadgenResult:
    """Run one load campaign; self-hosts on loopback when no host given.

    Args:
        config: campaign shape (defaults to :class:`LoadgenConfig`).
        host, port: an already-running service to aim at; when ``host``
            is ``None`` (and no ``endpoints``) a service is created,
            loaded with the config's groups, and torn down afterwards.
        obs: optional obs context for the self-hosted service.
        session_config: session behaviour for the self-hosted service.
        endpoints: several ``(host, port)`` targets — sessions
            round-robin across them and the result carries a
            per-endpoint stats breakdown next to the merged totals
            (drive a shard gateway and its bare workers side by side).
        tracer: optional :class:`~repro.obs.tracing.Tracer` shared by
            every generated reader; each round roots a traced span and
            propagates its context over the wire.
    """
    cfg = config if config is not None else LoadgenConfig()
    return asyncio.run(
        _run_loadgen_async(
            cfg,
            host,
            port,
            obs=obs,
            session_config=session_config,
            endpoints=endpoints,
            tracer=tracer,
        )
    )


def format_loadgen_result(result: LoadgenResult) -> str:
    """Human-readable campaign summary for the CLI."""
    verdicts = ", ".join(
        f"{k}={v}" for k, v in sorted(result.verdict_counts.items())
    ) or "none"
    lines = [
        "wire             : "
        f"v{result.wire_version}, pipeline depth {result.pipeline_depth}",
        f"rounds completed : {result.rounds_completed}",
        f"verdicts         : {verdicts}",
        f"protocol errors  : {result.protocol_errors}",
        f"deadline timeouts: {result.timeouts}",
        f"wall time        : {result.wall_s_total:.3f} s",
        f"throughput       : {result.throughput_rps:.1f} rounds/s",
        "wire bytes       : "
        f"{result.bytes_sent_total} out, {result.bytes_received_total} in "
        f"({result.bytes_per_round:.0f} per round)",
        "latency          : "
        f"p50 {result.latency_p50_ms:.2f} ms  "
        f"p95 {result.latency_p95_ms:.2f} ms  "
        f"p99 {result.latency_p99_ms:.2f} ms",
    ]
    if result.churn_rate > 0:
        epochs = ", ".join(
            f"{g}={e}" for g, e in sorted(result.population_epochs.items())
        ) or "none"
        lines.append(
            "membership churn : "
            f"{result.membership_updates} replace updates "
            f"(rate {result.churn_rate:g}/round)"
        )
        lines.append(f"population epochs: {epochs}")
    return "\n".join(lines)
