"""Vectorised Monte Carlo trial kernels.

The protocol engines in :mod:`repro.core` walk real tag state machines
— right for correctness, far too slow for 1000-trial sweeps over
thousands of tags. These kernels compute the *same distributions* with
numpy array operations and are cross-validated against the slow path in
the test suite:

* :func:`trp_detection_trials` — Fig. 5's experiment: does TRP notice
  ``x`` randomly stolen tags?
* :func:`utrp_collusion_detection_trials` — Fig. 7's experiment: does
  UTRP notice the optimal colluding pair?
* :func:`collect_all_slots_trials` — Fig. 4's baseline cost.
"""

from __future__ import annotations

import numpy as np

from ..adversary.collusion import simulate_colluding_utrp_scan
from ..obs.profiling import NULL_PROFILER
from ..aloha.framed_slotted import simulate_collect_all_slots
from ..rfid.hashing import slots_for_tags
from ..rfid.ids import random_tag_ids
from ..server.verifier import expected_utrp_bitstring

__all__ = [
    "trp_trial_detected",
    "trp_detection_trials",
    "trp_mismatch_count_trials",
    "trp_false_alarm_trials",
    "utrp_collusion_detected",
    "utrp_collusion_trial_detected",
    "utrp_collusion_detection_trials",
    "collect_all_slots_trials",
]

_SEED_SPACE = 1 << 62
_INF = np.iinfo(np.int64).max


def trp_trial_detected(
    tag_ids: np.ndarray,
    missing_mask: np.ndarray,
    frame_size: int,
    seed: int,
) -> bool:
    """One TRP round: is the theft visible in the bitstring?

    A missing tag is exposed iff its slot receives no reply from any
    present tag — i.e. the observed bitstring has a 0 where the
    prediction has a 1. (The observed bitstring can never have extra
    1s: present tags are a subset of registered tags.)
    """
    slots = slots_for_tags(np.asarray(tag_ids, dtype=np.uint64), seed, frame_size)
    present_counts = np.bincount(slots[~missing_mask], minlength=frame_size)
    missing_slots = slots[missing_mask]
    return bool(np.any(present_counts[missing_slots] == 0))


def trp_detection_trials(
    n: int,
    missing: int,
    frame_size: int,
    trials: int,
    rng: np.random.Generator,
    resample_population: bool = True,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Fig. 5 kernel: ``trials`` independent TRP rounds, fresh seed and
    fresh random theft each time.

    Args:
        n: population size.
        missing: tags stolen per trial (the experiments use ``m + 1``).
        frame_size: TRP frame (from Eq. 2 in the paper's setup).
        trials: Monte Carlo sample size.
        rng: source for populations, seeds and theft choices.
        resample_population: draw fresh IDs each trial (matches the
            paper averaging over deployments); False reuses one
            population and varies only seed and theft.

    Returns:
        Boolean array, one entry per trial (True = theft detected).

    Raises:
        ValueError: if ``missing`` exceeds ``n`` or ``trials`` is not
            positive.
    """
    if not 0 <= missing <= n:
        raise ValueError("missing must be within [0, n]")
    if trials <= 0:
        raise ValueError("trials must be positive")
    detections = np.empty(trials, dtype=bool)
    with profiler.timer("fastpath.trp_detection_trials"):
        ids = random_tag_ids(n, rng)
        for t in range(trials):
            if resample_population and t:
                ids = random_tag_ids(n, rng)
            mask = np.zeros(n, dtype=bool)
            mask[rng.choice(n, size=missing, replace=False)] = True
            seed = int(rng.integers(0, _SEED_SPACE))
            detections[t] = trp_trial_detected(ids, mask, frame_size, seed)
    return detections


def utrp_collusion_trial_detected(
    tag_ids: np.ndarray,
    counters: np.ndarray,
    stolen_mask: np.ndarray,
    frame_size: int,
    seeds,
    budget: int,
) -> bool:
    """One UTRP round against the optimal colluding pair.

    Plays the attack scan and the server's cascade replay over the same
    challenge; detection is any bitstring difference.
    """
    forged = simulate_colluding_utrp_scan(
        tag_ids, counters, stolen_mask, frame_size, seeds, budget
    )
    prediction = expected_utrp_bitstring(tag_ids, counters, frame_size, seeds)
    return not np.array_equal(forged.bitstring, prediction.bitstring)


def trp_mismatch_count_trials(
    n: int,
    missing: int,
    frame_size: int,
    trials: int,
    rng: np.random.Generator,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Mismatched-slot *counts* per TRP trial (alarm-policy studies).

    A slot mismatches when at least one missing tag picked it and no
    present tag did — the quantity
    :func:`repro.core.estimation.estimate_missing_count` inverts.

    Returns:
        ``int64`` array, one mismatch count per trial.

    Raises:
        ValueError: if ``missing`` is outside ``[0, n]`` or ``trials``
            is not positive.
    """
    if not 0 <= missing <= n:
        raise ValueError("missing must be within [0, n]")
    if trials <= 0:
        raise ValueError("trials must be positive")
    counts = np.empty(trials, dtype=np.int64)
    with profiler.timer("fastpath.trp_mismatch_count_trials"):
        for t in range(trials):
            ids = random_tag_ids(n, rng)
            seed = int(rng.integers(0, _SEED_SPACE))
            slots = slots_for_tags(ids, seed, frame_size)
            present = np.bincount(slots[missing:], minlength=frame_size)
            missing_slots = np.unique(slots[:missing])
            counts[t] = int(np.sum(present[missing_slots] == 0))
    return counts


def trp_false_alarm_trials(
    n: int,
    frame_size: int,
    miss_rate: float,
    trials: int,
    rng: np.random.Generator,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Mismatch counts on an *intact* set over an unreliable channel.

    Models the introduction's benign failure modes — scratched tags,
    items physically blocking each other — as each tag independently
    failing to answer with probability ``miss_rate``. Any resulting
    mismatch is a false alarm under the paper's strict rule; the
    Abl. G bench uses these counts to compare alarm policies.

    Raises:
        ValueError: if ``miss_rate`` is outside ``[0, 1]`` or
            ``trials`` is not positive.
    """
    if not 0.0 <= miss_rate <= 1.0:
        raise ValueError("miss_rate must be within [0, 1]")
    if trials <= 0:
        raise ValueError("trials must be positive")
    counts = np.empty(trials, dtype=np.int64)
    with profiler.timer("fastpath.trp_false_alarm_trials"):
        for t in range(trials):
            ids = random_tag_ids(n, rng)
            seed = int(rng.integers(0, _SEED_SPACE))
            slots = slots_for_tags(ids, seed, frame_size)
            responded = rng.random(n) >= miss_rate
            heard = np.bincount(slots[responded], minlength=frame_size)
            expected_slots = np.unique(slots)
            counts[t] = int(np.sum(heard[expected_slots] == 0))
    return counts


def utrp_collusion_detected(
    tag_ids: np.ndarray,
    counters: np.ndarray,
    stolen_mask: np.ndarray,
    frame_size: int,
    seeds,
    budget: int,
) -> bool:
    """Detection-only collusion kernel — one cascade walk, early exit.

    Two structural facts make this equivalent to (and much faster than)
    :func:`utrp_collusion_trial_detected`:

    * while the pair stay synchronised, their merged bitstring equals
      the server's prediction *by construction* (they behave as one
      reader over the full set), so no comparison is needed there;
    * after the budget runs out, the prediction and R1's solo cascade
      stay aligned exactly until the first expected event whose
      repliers are all stolen — R1 reports a 0 there and skips the
      re-seed, so that slot is both the first divergence and a
      guaranteed divergence.

    Hence: walk the joint cascade; once solo, return True at the first
    stolen-only event, False if the frame drains without one. The test
    suite cross-validates this against the full bitstring comparison.
    """
    from ..rfid.hashing import slots_for_tags_with_counters

    ids = np.asarray(tag_ids, dtype=np.uint64)
    cts = np.asarray(counters, dtype=np.int64).copy()
    stolen = np.asarray(stolen_mask, dtype=bool)
    if not (ids.shape == cts.shape == stolen.shape):
        raise ValueError("tag_ids, counters and stolen_mask must align")
    if len(seeds) < frame_size:
        raise ValueError(f"need {frame_size} seeds, got {len(seeds)}")
    if budget < 0:
        raise ValueError("budget must be >= 0")
    if ids.size == 0:
        return False  # no tags: prediction and forgery are both all-0s

    active = np.ones(ids.shape, dtype=bool)
    kept = ~stolen

    def rehash(seed: int, sub_frame: int) -> np.ndarray:
        full = np.full(ids.shape, _INF, dtype=np.int64)
        if active.any():
            full[active] = slots_for_tags_with_counters(
                ids[active], seed, sub_frame, cts[active]
            )
        return full

    cts += 1
    seeds_used = 1
    offset = 0
    cursor = 0
    budget_left = budget
    solo = False
    slots = rehash(int(seeds[0]), frame_size)

    while offset + cursor < frame_size:
        masked = np.where(active & (slots >= cursor), slots, _INF)
        next1 = int(np.where(kept, masked, _INF).min())
        next2 = int(np.where(stolen, masked, _INF).min())
        event = min(next1, next2)
        if event == _INF:
            return False  # nothing will ever reply again: suffix all 0s
        if not solo:
            comms = (event - cursor) + (1 if next2 < next1 else 0)
            if budget_left < comms:
                cursor += budget_left
                budget_left = 0
                solo = True
                continue
            budget_left -= comms
        elif next2 < next1:
            return True  # stolen-only slot: server expects 1, R1 says 0
        repliers = active & (slots == event)
        active &= ~repliers
        sub_frame = frame_size - (offset + event + 1)
        if sub_frame <= 0:
            return False
        cts += 1
        seeds_used += 1
        offset = offset + event + 1
        cursor = 0
        slots = rehash(int(seeds[seeds_used - 1]), sub_frame)
    return False


def utrp_collusion_detection_trials(
    n: int,
    stolen: int,
    frame_size: int,
    budget: int,
    trials: int,
    rng: np.random.Generator,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Fig. 7 kernel: ``trials`` independent collusion attempts.

    Each trial draws a fresh population, a fresh random split (the
    adversary steals ``stolen`` random tags), and a fresh pre-committed
    seed list.

    Returns:
        Boolean array, one entry per trial (True = attack detected).

    Raises:
        ValueError: if ``stolen`` is out of range or ``trials`` is not
            positive.
    """
    if not 0 < stolen < n:
        raise ValueError("stolen must be within (0, n)")
    if trials <= 0:
        raise ValueError("trials must be positive")
    detections = np.empty(trials, dtype=bool)
    with profiler.timer("fastpath.utrp_collusion_detection_trials"):
        for t in range(trials):
            ids = random_tag_ids(n, rng)
            counters = np.zeros(n, dtype=np.int64)
            mask = np.zeros(n, dtype=bool)
            mask[rng.choice(n, size=stolen, replace=False)] = True
            seeds = rng.integers(0, _SEED_SPACE, size=frame_size).tolist()
            detections[t] = utrp_collusion_detected(
                ids, counters, mask, frame_size, seeds, budget
            )
    return detections


def collect_all_slots_trials(
    n: int,
    tolerance: int,
    trials: int,
    rng: np.random.Generator,
    missing: int = 0,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Fig. 4 kernel: slots used by *collect all* per trial.

    Raises:
        ValueError: if more tags are missing than the tolerance allows
            (collect-all would never terminate).
    """
    if missing > tolerance:
        raise ValueError("collect-all cannot terminate with missing > tolerance")
    if trials <= 0:
        raise ValueError("trials must be positive")
    out = np.empty(trials, dtype=np.int64)
    with profiler.timer("fastpath.collect_all_slots_trials"):
        for t in range(trials):
            ids = random_tag_ids(n, rng)
            if missing:
                keep = np.ones(n, dtype=bool)
                keep[rng.choice(n, size=missing, replace=False)] = False
                ids = ids[keep]
            out[t] = simulate_collect_all_slots(
                ids, n, tolerance, rng, profiler=profiler
            )
    return out
