"""Monte Carlo engine: seeding, runners, metrics, fast kernels, scenarios."""

from .batched import (
    DEFAULT_BATCH_SIZE,
    collect_all_slots_trials_batched,
    trp_detection_trials_batched,
    trp_false_alarm_trials_batched,
    trp_mismatch_count_trials_batched,
    utrp_collusion_detection_trials_batched,
)
from .fastpath import (
    collect_all_slots_trials,
    trp_detection_trials,
    trp_trial_detected,
    utrp_collusion_detection_trials,
    utrp_collusion_trial_detected,
)
from .metrics import ProportionSummary, summarize_detections, wilson_interval
from .rng import derive_seed, generator_for_trial, spawn_generators, trial_seed_stream
from .runner import MonteCarloRunner, TrialBatch
from .scenarios import DeployedSet, deploy, deploy_with_collusion, deploy_with_theft
from .trace import TraceEvent, TraceEventKind, TracingChannel, render_trace

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "collect_all_slots_trials",
    "collect_all_slots_trials_batched",
    "trp_detection_trials",
    "trp_detection_trials_batched",
    "trp_false_alarm_trials_batched",
    "trp_mismatch_count_trials_batched",
    "trp_trial_detected",
    "utrp_collusion_detection_trials",
    "utrp_collusion_detection_trials_batched",
    "utrp_collusion_trial_detected",
    "ProportionSummary",
    "summarize_detections",
    "wilson_interval",
    "derive_seed",
    "generator_for_trial",
    "spawn_generators",
    "trial_seed_stream",
    "MonteCarloRunner",
    "TrialBatch",
    "DeployedSet",
    "deploy",
    "deploy_with_collusion",
    "deploy_with_theft",
    "TraceEvent",
    "TraceEventKind",
    "TracingChannel",
    "render_trace",
]
