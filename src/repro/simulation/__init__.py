"""Monte Carlo engine: seeding, runners, metrics, fast kernels, scenarios."""

from .fastpath import (
    collect_all_slots_trials,
    trp_detection_trials,
    trp_trial_detected,
    utrp_collusion_detection_trials,
    utrp_collusion_trial_detected,
)
from .metrics import ProportionSummary, summarize_detections, wilson_interval
from .rng import derive_seed, generator_for_trial, spawn_generators
from .runner import MonteCarloRunner, TrialBatch
from .scenarios import DeployedSet, deploy, deploy_with_collusion, deploy_with_theft
from .trace import TraceEvent, TraceEventKind, TracingChannel, render_trace

__all__ = [
    "collect_all_slots_trials",
    "trp_detection_trials",
    "trp_trial_detected",
    "utrp_collusion_detection_trials",
    "utrp_collusion_trial_detected",
    "ProportionSummary",
    "summarize_detections",
    "wilson_interval",
    "derive_seed",
    "generator_for_trial",
    "spawn_generators",
    "MonteCarloRunner",
    "TrialBatch",
    "DeployedSet",
    "deploy",
    "deploy_with_collusion",
    "deploy_with_theft",
    "TraceEvent",
    "TraceEventKind",
    "TracingChannel",
    "render_trace",
]
