"""Trial-batched Monte Carlo kernels.

The scalar kernels in :mod:`repro.simulation.fastpath` run a Python
loop of one ``random_tag_ids`` + ``slots_for_tags`` + ``bincount`` per
trial; at figure-sweep scale (1000 trials per grid cell, dozens of
cells) the loop overhead dwarfs the array work. The kernels here batch
the **trials axis** instead: a ``(trials, n)`` ID matrix is hashed in
one vectorised pass, per-trial occupancy falls out of a single
offset-``bincount`` (``slot + trial_index * frame_size``), and trials
execute in memory-bounded chunks of ``batch_size``.

Randomness is *counter-based*: every trial's population, theft, channel
losses and challenge seeds are pure functions of its entry in
:func:`repro.simulation.rng.trial_seed_stream` (splitmix64 streams in
counter mode). Consequences the test suite relies on:

* results are **independent of** ``batch_size`` — chunk boundaries
  never touch the random stream;
* any single trial's inputs can be reconstructed exactly
  (:func:`trp_trial_inputs`, :func:`utrp_trial_inputs`) and replayed
  through the scalar kernels, which remain the cross-validation
  oracle.

The scalar kernels draw from a sequential ``numpy`` generator, so the
batched kernels match them **distributionally** (same model, different
stream), not sample-for-sample; `tests/test_batched_kernels.py` checks
both contracts.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..obs.profiling import NULL_PROFILER
from ..rfid.hashing import MASK64, splitmix64_array
from .rng import trial_seed_stream

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "batched_theft_detected",
    "trp_detection_trials_batched",
    "trp_mismatch_count_trials_batched",
    "trp_false_alarm_trials_batched",
    "utrp_collusion_detection_trials_batched",
    "collect_all_slots_trials_batched",
    "trp_trial_inputs",
    "utrp_trial_inputs",
]

#: Default trials per chunk. A chunk materialises a few
#: ``(batch_size, n)`` uint64/float64 matrices plus a
#: ``(batch_size, frame_size)`` count grid — at the paper's largest
#: cell (n = 2000, f ≈ 1400) that is ~4 MB per 64-trial chunk, small
#: enough to stay L2/L3-resident (measurably faster than wider chunks;
#: results are identical either way).
DEFAULT_BATCH_SIZE = 64

_SEED_SPACE = 1 << 62
_GAMMA = np.uint64(0x9E3779B97F4A7C15)

#: Domain-separation salts: each per-trial random stream (IDs, theft,
#: challenge seed, loss pattern, pre-committed UTRP seeds, nested
#: generator) hashes its trial seed against a distinct constant, so the
#: streams are independent splitmix64 sequences.
_DOM_IDS = np.uint64(0x1D5D31F2A3C94E01)
_DOM_THEFT = np.uint64(0x2A8F0C64D1B73503)
_DOM_FRAME_SEED = np.uint64(0x3C41E98B72D6A105)
_DOM_LOSS = np.uint64(0x4B93A75E08C1F207)
_DOM_UTRP_SEEDS = np.uint64(0x5E07B2D94A68C309)
_DOM_SUBRNG = np.uint64(0x6F15D8A3B0427C0B)


def _stream(trial_seeds: np.ndarray, count: int, domain: np.uint64) -> np.ndarray:
    """``(len(trial_seeds), count)`` uint64 splitmix64 counter stream."""
    base = splitmix64_array(trial_seeds ^ domain)
    steps = (np.arange(1, count + 1, dtype=np.uint64)) * _GAMMA
    with np.errstate(over="ignore"):
        return splitmix64_array(base[:, None] + steps[None, :])


def _scalar_stream_word(trial_seeds: np.ndarray, domain: np.uint64) -> np.ndarray:
    """One uint64 word per trial (a length-1 stream, squeezed)."""
    return _stream(trial_seeds, 1, domain)[:, 0]


def _uniforms(trial_seeds: np.ndarray, count: int, domain: np.uint64) -> np.ndarray:
    """``(trials, count)`` float64 uniforms in [0, 1) from the stream."""
    return (_stream(trial_seeds, count, domain) >> np.uint64(11)) * 2.0**-53


def _trial_tag_ids(trial_seeds: np.ndarray, n: int) -> np.ndarray:
    """``(trials, n)`` tag-ID matrix, entries uniform over [0, 2^63).

    Matches :func:`repro.rfid.ids.random_tag_ids`'s value range.
    Within-row duplicates are possible in principle but astronomically
    unlikely (< n^2 / 2^64 per trial) — the same odds the scalar path's
    re-draw loop guards against and never hits.
    """
    return _stream(trial_seeds, n, _DOM_IDS) >> np.uint64(1)


def _trial_frame_seeds(trial_seeds: np.ndarray) -> np.ndarray:
    """One 62-bit challenge seed ``r`` per trial."""
    return _scalar_stream_word(trial_seeds, _DOM_FRAME_SEED) >> np.uint64(2)


def _theft_masks(trial_seeds: np.ndarray, n: int, missing: int) -> np.ndarray:
    """Boolean ``(trials, n)`` masks with exactly ``missing`` True/row.

    Each row thresholds its uniforms at their ``missing``-th smallest
    value — a uniformly random ``missing``-subset of the population.
    """
    if missing == 0:
        return np.zeros((trial_seeds.size, n), dtype=bool)
    u = _uniforms(trial_seeds, n, _DOM_THEFT)
    kth = np.partition(u, missing - 1, axis=1)[:, missing - 1 : missing]
    return u <= kth


def _slot_matrix(
    ids: np.ndarray, frame_seeds: np.ndarray, frame_size: int
) -> np.ndarray:
    """Vectorised ``h(id XOR r) mod f`` over a whole chunk of trials."""
    hashes = splitmix64_array(ids ^ frame_seeds[:, None])
    return (hashes % np.uint64(frame_size)).astype(np.int64)


def _occupancy_counts(
    slot_matrix: np.ndarray, select: np.ndarray, frame_size: int
) -> np.ndarray:
    """Per-trial slot occupancy of the selected tags, via one
    offset-``bincount`` over the whole chunk.

    Args:
        slot_matrix: ``(trials, n)`` slot picks.
        select: boolean ``(trials, n)`` — which tags reply.
        frame_size: ``f``.

    Returns:
        ``(trials, frame_size)`` reply counts.
    """
    trials = slot_matrix.shape[0]
    offsets = np.arange(trials, dtype=np.int64)[:, None] * frame_size
    flat = slot_matrix + offsets
    counts = np.bincount(flat[select], minlength=trials * frame_size)
    return counts.reshape(trials, frame_size)


def batched_theft_detected(
    slot_matrix: np.ndarray,
    stolen: np.ndarray,
    frame_size: int,
    stolen_per_trial: int,
) -> np.ndarray:
    """Per-trial TRP verdicts from a chunk's slot picks.

    A theft is detected iff at least one stolen tag's slot receives no
    reply from any present tag — evaluated for every trial at once with
    an offset-``bincount`` and one gather.

    Args:
        slot_matrix: ``(trials, n)`` slot picks.
        stolen: boolean ``(trials, n)``; each row must have exactly
            ``stolen_per_trial`` True entries.
        frame_size: ``f``.
        stolen_per_trial: thefts per trial (constant across the chunk).

    Returns:
        Boolean array of ``trials`` verdicts.

    Raises:
        ValueError: on shape mismatch or an inconsistent theft count.
    """
    if slot_matrix.shape != stolen.shape:
        raise ValueError("slot_matrix and stolen must align")
    trials = slot_matrix.shape[0]
    if stolen_per_trial == 0:
        return np.zeros(trials, dtype=bool)
    offsets = np.arange(trials, dtype=np.int64)[:, None] * frame_size
    flat = slot_matrix + offsets
    # Row-major boolean indexing yields each row's stolen slots
    # contiguously, so the (trials, stolen_per_trial) reshape is exact.
    stolen_flat = flat[stolen]
    if stolen_flat.size != trials * stolen_per_trial:
        raise ValueError("every trial must steal exactly stolen_per_trial tags")
    # present = all - stolen, sparing the big ~stolen gather copy.
    total = trials * frame_size
    present_counts = np.bincount(flat.ravel(), minlength=total)
    present_counts -= np.bincount(stolen_flat, minlength=total)
    exposed = present_counts[stolen_flat] == 0
    return exposed.reshape(trials, stolen_per_trial).any(axis=1)


def _chunks(trials: int, batch_size: int):
    for lo in range(0, trials, batch_size):
        yield lo, min(lo + batch_size, trials)


def _check_batched_args(trials: int, batch_size: int) -> None:
    if trials <= 0:
        raise ValueError("trials must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")


def trp_detection_trials_batched(
    n: int,
    missing: int,
    frame_size: int,
    trials: int,
    master_seed: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Batched Fig. 5 kernel — the trials-axis twin of
    :func:`repro.simulation.fastpath.trp_detection_trials`.

    Every trial draws a fresh population, theft and challenge seed from
    its own counter-based stream, so the returned array is a pure
    function of ``(master_seed, n, missing, frame_size, trials)`` —
    ``batch_size`` only bounds peak memory.

    Args:
        n: population size.
        missing: tags stolen per trial.
        frame_size: TRP frame (Eq. 2 in the paper's setup).
        trials: Monte Carlo sample size.
        master_seed: root of the per-trial seed stream.
        batch_size: trials per chunk (memory/throughput trade-off).

    Returns:
        Boolean array, one entry per trial (True = theft detected).

    Raises:
        ValueError: if ``missing`` is outside ``[0, n]``, or ``trials``
            / ``batch_size`` is not positive.
    """
    if not 0 <= missing <= n:
        raise ValueError("missing must be within [0, n]")
    _check_batched_args(trials, batch_size)
    seeds = trial_seed_stream(master_seed, trials)
    detections = np.zeros(trials, dtype=bool)
    if missing == 0:
        return detections
    with profiler.timer("batched.trp_detection_trials"):
        for lo, hi in _chunks(trials, batch_size):
            chunk = seeds[lo:hi]
            slots = _slot_matrix(
                _trial_tag_ids(chunk, n), _trial_frame_seeds(chunk), frame_size
            )
            stolen = _theft_masks(chunk, n, missing)
            detections[lo:hi] = batched_theft_detected(
                slots, stolen, frame_size, missing
            )
    return detections


def trp_mismatch_count_trials_batched(
    n: int,
    missing: int,
    frame_size: int,
    trials: int,
    master_seed: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Batched mismatch-count kernel (alarm-policy studies).

    A slot mismatches when at least one missing tag picked it and no
    present tag did; the per-trial count is the conjunction of two
    offset-``bincount`` grids.

    Returns:
        ``int64`` array, one mismatch count per trial.

    Raises:
        ValueError: if ``missing`` is outside ``[0, n]`` or ``trials``
            / ``batch_size`` is not positive.
    """
    if not 0 <= missing <= n:
        raise ValueError("missing must be within [0, n]")
    _check_batched_args(trials, batch_size)
    seeds = trial_seed_stream(master_seed, trials)
    counts = np.zeros(trials, dtype=np.int64)
    if missing == 0:
        return counts
    with profiler.timer("batched.trp_mismatch_count_trials"):
        for lo, hi in _chunks(trials, batch_size):
            chunk = seeds[lo:hi]
            slots = _slot_matrix(
                _trial_tag_ids(chunk, n), _trial_frame_seeds(chunk), frame_size
            )
            stolen = _theft_masks(chunk, n, missing)
            present = _occupancy_counts(slots, ~stolen, frame_size)
            gone = _occupancy_counts(slots, stolen, frame_size)
            counts[lo:hi] = ((present == 0) & (gone > 0)).sum(axis=1)
    return counts


def trp_false_alarm_trials_batched(
    n: int,
    frame_size: int,
    miss_rate: float,
    trials: int,
    master_seed: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Batched false-alarm kernel: mismatch counts on an *intact* set
    over an unreliable channel (each reply lost independently with
    probability ``miss_rate``).

    Returns:
        ``int64`` array, one false-alarm mismatch count per trial.

    Raises:
        ValueError: if ``miss_rate`` is outside ``[0, 1]`` or
            ``trials`` / ``batch_size`` is not positive.
    """
    if not 0.0 <= miss_rate <= 1.0:
        raise ValueError("miss_rate must be within [0, 1]")
    _check_batched_args(trials, batch_size)
    seeds = trial_seed_stream(master_seed, trials)
    counts = np.empty(trials, dtype=np.int64)
    with profiler.timer("batched.trp_false_alarm_trials"):
        for lo, hi in _chunks(trials, batch_size):
            chunk = seeds[lo:hi]
            slots = _slot_matrix(
                _trial_tag_ids(chunk, n), _trial_frame_seeds(chunk), frame_size
            )
            responded = _uniforms(chunk, n, _DOM_LOSS) >= miss_rate
            heard = _occupancy_counts(slots, responded, frame_size)
            expected = _occupancy_counts(
                slots, np.ones_like(responded), frame_size
            )
            counts[lo:hi] = ((expected > 0) & (heard == 0)).sum(axis=1)
    return counts


def utrp_collusion_detection_trials_batched(
    n: int,
    stolen: int,
    frame_size: int,
    budget: int,
    trials: int,
    master_seed: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Batched Fig. 7 kernel.

    The cascade walk itself is inherently sequential per trial (every
    occupied slot re-seeds the remainder of the frame), so each verdict
    still calls the scalar
    :func:`repro.simulation.fastpath.utrp_collusion_detected`; what is
    batched is everything around it — populations, theft splits and the
    pre-committed seed lists are drawn as whole-chunk matrices from the
    per-trial streams.

    Returns:
        Boolean array, one entry per trial (True = attack detected).

    Raises:
        ValueError: if ``stolen`` is out of range or ``trials`` /
            ``batch_size`` is not positive.
    """
    from .fastpath import utrp_collusion_detected

    if not 0 < stolen < n:
        raise ValueError("stolen must be within (0, n)")
    _check_batched_args(trials, batch_size)
    seeds = trial_seed_stream(master_seed, trials)
    detections = np.empty(trials, dtype=bool)
    counters = np.zeros(n, dtype=np.int64)
    with profiler.timer("batched.utrp_collusion_detection_trials"):
        for lo, hi in _chunks(trials, batch_size):
            chunk = seeds[lo:hi]
            ids = _trial_tag_ids(chunk, n)
            masks = _theft_masks(chunk, n, stolen)
            seed_lists = (
                _stream(chunk, frame_size, _DOM_UTRP_SEEDS) >> np.uint64(2)
            ).astype(np.int64)
            for t in range(hi - lo):
                detections[lo + t] = utrp_collusion_detected(
                    ids[t], counters, masks[t], frame_size, seed_lists[t], budget
                )
    return detections


def collect_all_slots_trials_batched(
    n: int,
    tolerance: int,
    trials: int,
    master_seed: int,
    missing: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
    profiler=NULL_PROFILER,
) -> np.ndarray:
    """Batched Fig. 4 kernel: slots used by *collect all* per trial.

    Populations and thefts are sampled as whole-chunk matrices; the
    multi-round inventory walk stays per trial (each round's frame size
    depends on the previous round's collisions), driven by a nested
    generator derived from the trial's seed.

    Raises:
        ValueError: if more tags are missing than the tolerance allows
            (collect-all would never terminate) or ``trials`` /
            ``batch_size`` is not positive.
    """
    from ..aloha.framed_slotted import simulate_collect_all_slots

    if missing > tolerance:
        raise ValueError("collect-all cannot terminate with missing > tolerance")
    _check_batched_args(trials, batch_size)
    seeds = trial_seed_stream(master_seed, trials)
    out = np.empty(trials, dtype=np.int64)
    with profiler.timer("batched.collect_all_slots_trials"):
        for lo, hi in _chunks(trials, batch_size):
            chunk = seeds[lo:hi]
            ids = _trial_tag_ids(chunk, n)
            keep = ~_theft_masks(chunk, n, missing)
            sub_seeds = _scalar_stream_word(chunk, _DOM_SUBRNG)
            for t in range(hi - lo):
                rng = np.random.default_rng(int(sub_seeds[t]))
                out[lo + t] = simulate_collect_all_slots(
                    ids[t][keep[t]], n, tolerance, rng, profiler=profiler
                )
    return out


class TrpTrialInputs(NamedTuple):
    """One batched TRP trial's reconstructed inputs."""

    tag_ids: np.ndarray
    stolen_mask: np.ndarray
    frame_seed: int


def trp_trial_inputs(
    master_seed: int, trial: int, n: int, missing: int
) -> TrpTrialInputs:
    """Reconstruct trial ``trial``'s exact inputs to the TRP kernels.

    Feeding these to the scalar
    :func:`repro.simulation.fastpath.trp_trial_detected` reproduces the
    batched kernel's verdict bit-for-bit — the exact-equality leg of
    the cross-validation suite.

    Raises:
        ValueError: if ``trial`` is negative or ``missing`` is out of
            range.
    """
    if trial < 0:
        raise ValueError("trial must be >= 0")
    if not 0 <= missing <= n:
        raise ValueError("missing must be within [0, n]")
    seed = trial_seed_stream(master_seed, trial + 1)[trial : trial + 1]
    return TrpTrialInputs(
        tag_ids=_trial_tag_ids(seed, n)[0],
        stolen_mask=_theft_masks(seed, n, missing)[0],
        frame_seed=int(_trial_frame_seeds(seed)[0]),
    )


class UtrpTrialInputs(NamedTuple):
    """One batched UTRP collusion trial's reconstructed inputs."""

    tag_ids: np.ndarray
    stolen_mask: np.ndarray
    seeds: np.ndarray


def utrp_trial_inputs(
    master_seed: int, trial: int, n: int, stolen: int, frame_size: int
) -> UtrpTrialInputs:
    """Reconstruct trial ``trial``'s exact inputs to the batched UTRP
    collusion kernel (IDs, theft split, pre-committed seed list).

    Raises:
        ValueError: if ``trial`` is negative or ``stolen`` out of range.
    """
    if trial < 0:
        raise ValueError("trial must be >= 0")
    if not 0 < stolen < n:
        raise ValueError("stolen must be within (0, n)")
    seed = trial_seed_stream(master_seed, trial + 1)[trial : trial + 1]
    return UtrpTrialInputs(
        tag_ids=_trial_tag_ids(seed, n)[0],
        stolen_mask=_theft_masks(seed, n, stolen)[0],
        seeds=(_stream(seed, frame_size, _DOM_UTRP_SEEDS) >> np.uint64(2))
        .astype(np.int64)[0],
    )
