"""Generic Monte Carlo runner.

Experiments are "run this trial function T times with independent
generators and summarise". The runner owns seeding discipline
(:mod:`.rng`), progress hooks, and summary construction so each
experiment module stays a pure description of *what* a trial is.

The runner is also an obs publisher: give it an
:class:`repro.obs.ObsContext` and every batch emits one ``mc.batch``
event (trials, outcome kind, seed-deterministic mean) and accumulates
wall clock under the ``mc.batch`` profiler phase — so a figure sweep's
trace shows where its Monte Carlo budget went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..obs.profiling import NULL_PROFILER
from .metrics import ProportionSummary, summarize_detections
from .rng import spawn_generators

__all__ = ["TrialBatch", "MonteCarloRunner"]


@dataclass
class TrialBatch:
    """Raw per-trial outcomes plus their summary.

    Attributes:
        outcomes: one float/bool per trial, in trial order.
        summary: proportion summary when outcomes are boolean, else
            ``None`` (numeric batches summarise via :attr:`mean`).
    """

    outcomes: np.ndarray
    summary: Optional[ProportionSummary] = None

    @property
    def mean(self) -> float:
        return float(np.mean(self.outcomes))

    @property
    def std(self) -> float:
        return float(np.std(self.outcomes))


class MonteCarloRunner:
    """Runs trial callables under reproducible per-trial generators."""

    def __init__(
        self,
        master_seed: int,
        progress: Optional[Callable[[int, int], None]] = None,
        obs=None,
    ):
        """Args:
            master_seed: experiment-level seed; trials spawn from it.
            progress: optional ``(done, total)`` callback, invoked
                after every trial (CLI progress display).
            obs: optional :class:`repro.obs.ObsContext`; batches are
                published to its bus/profiler.
        """
        self.master_seed = master_seed
        self._progress = progress
        self._obs = obs

    def _publish(self, kind: str, batch: TrialBatch) -> None:
        if self._obs is None:
            return
        self._obs.bus.emit(
            "mc.batch",
            scope=f"mc/seed:{self.master_seed}",
            kind=kind,
            trials=int(batch.outcomes.size),
            mean=batch.mean,
        )

    def run_boolean(
        self, trial: Callable[[np.random.Generator], bool], trials: int
    ) -> TrialBatch:
        """Run a detect/miss trial function; summarise as a proportion.

        Raises:
            ValueError: if ``trials`` is not positive.
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        profiler = self._obs.profiler if self._obs is not None else NULL_PROFILER
        gens = spawn_generators(self.master_seed, trials)
        outcomes = np.empty(trials, dtype=bool)
        with profiler.timer("mc.batch"):
            for i, gen in enumerate(gens):
                outcomes[i] = bool(trial(gen))
                if self._progress is not None:
                    self._progress(i + 1, trials)
        batch = TrialBatch(outcomes=outcomes, summary=summarize_detections(outcomes))
        self._publish("boolean", batch)
        return batch

    def run_numeric(
        self, trial: Callable[[np.random.Generator], float], trials: int
    ) -> TrialBatch:
        """Run a cost-measuring trial function (e.g. slots used).

        Raises:
            ValueError: if ``trials`` is not positive.
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        profiler = self._obs.profiler if self._obs is not None else NULL_PROFILER
        gens = spawn_generators(self.master_seed, trials)
        outcomes = np.empty(trials, dtype=np.float64)
        with profiler.timer("mc.batch"):
            for i, gen in enumerate(gens):
                outcomes[i] = float(trial(gen))
                if self._progress is not None:
                    self._progress(i + 1, trials)
        batch = TrialBatch(outcomes=outcomes)
        self._publish("numeric", batch)
        return batch

    def run_vectorised(
        self,
        kernel: Callable[[int, np.random.Generator], np.ndarray],
        trials: int,
    ) -> TrialBatch:
        """Hand the whole batch to a vectorised kernel.

        The kernel receives ``(trials, generator)`` and returns one
        outcome per trial; used by the fast paths where per-trial
        generator spawning would dominate runtime.
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        profiler = self._obs.profiler if self._obs is not None else NULL_PROFILER
        gen = np.random.default_rng(np.random.SeedSequence(self.master_seed))
        with profiler.timer("mc.batch"):
            outcomes = np.asarray(kernel(trials, gen))
        if outcomes.shape != (trials,):
            raise ValueError(
                f"kernel returned shape {outcomes.shape}, expected ({trials},)"
            )
        summary = (
            summarize_detections(outcomes) if outcomes.dtype == bool else None
        )
        batch = TrialBatch(outcomes=outcomes, summary=summary)
        self._publish("vectorised", batch)
        return batch
