"""Generic Monte Carlo runner.

Experiments are "run this trial function T times with independent
generators and summarise". The runner owns seeding discipline
(:mod:`.rng`), progress hooks, and summary construction so each
experiment module stays a pure description of *what* a trial is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .metrics import ProportionSummary, summarize_detections
from .rng import spawn_generators

__all__ = ["TrialBatch", "MonteCarloRunner"]


@dataclass
class TrialBatch:
    """Raw per-trial outcomes plus their summary.

    Attributes:
        outcomes: one float/bool per trial, in trial order.
        summary: proportion summary when outcomes are boolean, else
            ``None`` (numeric batches summarise via :attr:`mean`).
    """

    outcomes: np.ndarray
    summary: Optional[ProportionSummary] = None

    @property
    def mean(self) -> float:
        return float(np.mean(self.outcomes))

    @property
    def std(self) -> float:
        return float(np.std(self.outcomes))


class MonteCarloRunner:
    """Runs trial callables under reproducible per-trial generators."""

    def __init__(
        self,
        master_seed: int,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        """Args:
            master_seed: experiment-level seed; trials spawn from it.
            progress: optional ``(done, total)`` callback, invoked
                after every trial (CLI progress display).
        """
        self.master_seed = master_seed
        self._progress = progress

    def run_boolean(
        self, trial: Callable[[np.random.Generator], bool], trials: int
    ) -> TrialBatch:
        """Run a detect/miss trial function; summarise as a proportion.

        Raises:
            ValueError: if ``trials`` is not positive.
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        gens = spawn_generators(self.master_seed, trials)
        outcomes = np.empty(trials, dtype=bool)
        for i, gen in enumerate(gens):
            outcomes[i] = bool(trial(gen))
            if self._progress is not None:
                self._progress(i + 1, trials)
        return TrialBatch(outcomes=outcomes, summary=summarize_detections(outcomes))

    def run_numeric(
        self, trial: Callable[[np.random.Generator], float], trials: int
    ) -> TrialBatch:
        """Run a cost-measuring trial function (e.g. slots used).

        Raises:
            ValueError: if ``trials`` is not positive.
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        gens = spawn_generators(self.master_seed, trials)
        outcomes = np.empty(trials, dtype=np.float64)
        for i, gen in enumerate(gens):
            outcomes[i] = float(trial(gen))
            if self._progress is not None:
                self._progress(i + 1, trials)
        return TrialBatch(outcomes=outcomes)

    def run_vectorised(
        self,
        kernel: Callable[[int, np.random.Generator], np.ndarray],
        trials: int,
    ) -> TrialBatch:
        """Hand the whole batch to a vectorised kernel.

        The kernel receives ``(trials, generator)`` and returns one
        outcome per trial; used by the fast paths where per-trial
        generator spawning would dominate runtime.
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        gen = np.random.default_rng(np.random.SeedSequence(self.master_seed))
        outcomes = np.asarray(kernel(trials, gen))
        if outcomes.shape != (trials,):
            raise ValueError(
                f"kernel returned shape {outcomes.shape}, expected ({trials},)"
            )
        summary = (
            summarize_detections(outcomes) if outcomes.dtype == bool else None
        )
        return TrialBatch(outcomes=outcomes, summary=summary)
