"""Summary statistics for Monte Carlo outputs.

Detection probabilities in Figs. 5 and 7 are binomial proportions over
1000 trials; alongside the point estimate we report a Wilson score
interval so EXPERIMENTS.md can state whether "above alpha" holds beyond
sampling noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["ProportionSummary", "summarize_detections", "wilson_interval"]


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because detection rates sit
    near 1.0, where the naive interval overshoots.

    Raises:
        ValueError: if ``trials`` is not positive or ``successes`` is
            out of range.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    phat = successes / trials
    denom = 1 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    # Clamp against floating-point droop so the interval always
    # contains the point estimate (bites at phat = 0 or 1 exactly).
    lo = min(max(0.0, centre - half), phat)
    hi = max(min(1.0, centre + half), phat)
    return (lo, hi)


@dataclass(frozen=True)
class ProportionSummary:
    """A detection-rate estimate with its uncertainty.

    Attributes:
        rate: point estimate (successes / trials).
        trials: sample size.
        ci_low / ci_high: 95% Wilson bounds.
    """

    rate: float
    trials: int
    ci_low: float
    ci_high: float

    def exceeds(self, threshold: float) -> bool:
        """Point estimate above the threshold (the paper's criterion)."""
        return self.rate > threshold

    def confidently_exceeds(self, threshold: float) -> bool:
        """Entire interval above the threshold — stronger than the
        paper's per-bar reading of Figs. 5 and 7."""
        return self.ci_low > threshold


def summarize_detections(detections: Sequence[bool]) -> ProportionSummary:
    """Collapse per-trial booleans into a :class:`ProportionSummary`.

    Raises:
        ValueError: on an empty sequence.
    """
    flags = np.asarray(detections, dtype=bool)
    if flags.size == 0:
        raise ValueError("at least one trial is required")
    successes = int(flags.sum())
    low, high = wilson_interval(successes, flags.size)
    return ProportionSummary(
        rate=successes / flags.size,
        trials=int(flags.size),
        ci_low=low,
        ci_high=high,
    )
