"""Protocol tracing: structured event logs of a scan.

Wraps a :class:`~repro.rfid.channel.SlottedChannel` so every broadcast
and slot poll is recorded as a typed event. Useful for debugging
cascade mismatches (UTRP's re-seeding makes "which seed was live at
slot 37?" a real question), for teaching, and for asserting protocol
shape in tests without reaching into internals.

.. deprecated:: the private ``events`` list is retained for backwards
   compatibility, but :class:`TracingChannel` is now an *adapter* over
   the unified observability layer: pass ``bus=`` (an
   :class:`repro.obs.EventBus`) and every on-air event is also
   published as a ``channel.*`` obs event, which is what the JSONL
   exporter, the trace digest and ``--trace-out`` consume. New code
   that only needs machine-readable traces should attach a bus and
   read it back through :mod:`repro.obs.exporters` rather than walking
   ``TracingChannel.events``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..obs.events import EventBus
from ..rfid.channel import SlotObservation, SlottedChannel

__all__ = ["TraceEventKind", "TraceEvent", "TracingChannel", "render_trace"]


class TraceEventKind(enum.Enum):
    POWER_CYCLE = "power-cycle"
    BROADCAST = "broadcast"
    POLL = "poll"


@dataclass(frozen=True)
class TraceEvent:
    """One on-air event.

    Attributes:
        kind: what happened.
        frame_size: ``f`` for broadcasts, else None.
        seed: ``r`` for broadcasts, else None.
        slot: polled slot for polls, else None.
        outcome: "empty" / "single" / "collision" for polls.
        repliers: how many tags answered (simulation ground truth).
    """

    kind: TraceEventKind
    frame_size: Optional[int] = None
    seed: Optional[int] = None
    slot: Optional[int] = None
    outcome: Optional[str] = None
    repliers: int = 0


class TracingChannel(SlottedChannel):
    """A :class:`SlottedChannel` that records everything it carries.

    Drop-in: readers and protocol engines take it anywhere they take a
    plain channel. With ``bus=`` the channel doubles as an obs
    publisher: each recorded :class:`TraceEvent` is mirrored as a
    ``channel.power_cycle`` / ``channel.broadcast`` / ``channel.poll``
    event under ``scope`` (one scope per channel — a channel is driven
    by one reader thread, which is exactly the obs ordering contract).
    """

    def __init__(
        self,
        *args,
        bus: Optional[EventBus] = None,
        scope: str = "channel",
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.events: List[TraceEvent] = []
        self.bus = bus
        self.scope = scope

    def power_cycle(self) -> None:
        self.events.append(TraceEvent(kind=TraceEventKind.POWER_CYCLE))
        if self.bus is not None:
            self.bus.emit("channel.power_cycle", scope=self.scope)
        super().power_cycle()

    def broadcast_seed(self, frame_size: int, seed: int) -> None:
        self.events.append(
            TraceEvent(
                kind=TraceEventKind.BROADCAST,
                frame_size=frame_size,
                seed=seed,
            )
        )
        if self.bus is not None:
            self.bus.emit(
                "channel.broadcast",
                scope=self.scope,
                frame_size=frame_size,
                seed=seed,
            )
        super().broadcast_seed(frame_size, seed)

    def poll_slot(self, slot: int, ids_on_air: bool = False) -> SlotObservation:
        obs = super().poll_slot(slot, ids_on_air=ids_on_air)
        self.events.append(
            TraceEvent(
                kind=TraceEventKind.POLL,
                slot=slot,
                outcome=obs.outcome.value,
                repliers=len(obs.replies),
            )
        )
        if self.bus is not None:
            self.bus.emit(
                "channel.poll",
                scope=self.scope,
                slot=slot,
                outcome=obs.outcome.value,
                repliers=len(obs.replies),
            )
        return obs

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def broadcasts(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is TraceEventKind.BROADCAST]

    def polls(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind is TraceEventKind.POLL]

    def occupied_polls(self) -> List[TraceEvent]:
        return [e for e in self.polls() if e.outcome != "empty"]


def render_trace(events: List[TraceEvent], limit: int = 0) -> str:
    """Human-readable trace listing (``limit`` > 0 truncates)."""
    lines: List[str] = []
    shown = events if limit <= 0 else events[:limit]
    for i, e in enumerate(shown):
        if e.kind is TraceEventKind.POWER_CYCLE:
            lines.append(f"{i:>5}  power-cycle")
        elif e.kind is TraceEventKind.BROADCAST:
            lines.append(
                f"{i:>5}  broadcast (f={e.frame_size}, r={e.seed:#x})"
            )
        else:
            extra = f" x{e.repliers}" if e.repliers > 1 else ""
            lines.append(f"{i:>5}  poll slot {e.slot}: {e.outcome}{extra}")
    if limit > 0 and len(events) > limit:
        lines.append(f"       ... {len(events) - limit} more events")
    return "\n".join(lines)
