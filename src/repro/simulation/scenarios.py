"""Prebuilt end-to-end scenarios.

Small factories that assemble populations, servers and adversaries into
the situations the paper (and the examples) reason about. They use the
*protocol-level* machinery — real tags, channels and readers — so each
scenario is also an integration test fixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..adversary.collusion import ColludingUtrpPair
from ..adversary.theft import TheftOutcome, worst_case_theft
from ..core.monitor import MonitoringServer
from ..core.parameters import MonitorRequirement
from ..rfid.channel import SlottedChannel
from ..rfid.population import TagPopulation

__all__ = ["DeployedSet", "deploy", "deploy_with_theft", "deploy_with_collusion"]


@dataclass
class DeployedSet:
    """A registered monitoring deployment ready to be checked.

    Attributes:
        server: the monitoring server, with the set registered.
        population: the physical tags (mutate to model theft).
        channel: the reader's view of the population.
        theft: the theft that was applied, if any.
        collusion: a colluding pair armed with the stolen tags, if the
            scenario includes one.
    """

    server: MonitoringServer
    population: TagPopulation
    channel: SlottedChannel
    theft: Optional[TheftOutcome] = None
    collusion: Optional[ColludingUtrpPair] = None


def deploy(
    requirement: MonitorRequirement,
    rng: np.random.Generator,
    counter_tags: bool = True,
    comm_budget: int = 20,
) -> DeployedSet:
    """Create a population and a server monitoring it, set intact."""
    pop = TagPopulation.create(
        requirement.population, uses_counter=counter_tags, rng=rng
    )
    server = MonitoringServer(
        requirement, rng=rng, counter_tags=counter_tags, comm_budget=comm_budget
    )
    server.register(pop.ids.tolist())
    return DeployedSet(
        server=server, population=pop, channel=SlottedChannel(pop.tags)
    )


def deploy_with_theft(
    requirement: MonitorRequirement,
    rng: np.random.Generator,
    counter_tags: bool = True,
    stolen: Optional[int] = None,
) -> DeployedSet:
    """Deployment where ``stolen`` tags (default ``m + 1``) are gone.

    The channel afterwards contains only the remaining tags — stolen
    tags are out of reader range (Sec. 3's adversary model).
    """
    deployed = deploy(requirement, rng, counter_tags=counter_tags)
    if stolen is None:
        theft = worst_case_theft(deployed.population, requirement.tolerance, rng)
    else:
        from ..adversary.theft import steal_random_tags

        theft = steal_random_tags(deployed.population, stolen, rng)
    deployed.theft = theft
    deployed.channel = SlottedChannel(deployed.population.tags)
    return deployed


def deploy_with_collusion(
    requirement: MonitorRequirement,
    rng: np.random.Generator,
    comm_budget: int = 20,
    stolen: Optional[int] = None,
) -> DeployedSet:
    """Deployment under the Sec. 5 adversary: the reader is dishonest
    and a collaborator holds the stolen tags on a second channel."""
    deployed = deploy_with_theft(
        requirement, rng, counter_tags=True, stolen=stolen
    )
    assert deployed.theft is not None
    stolen_channel = SlottedChannel(deployed.theft.stolen.tags)
    deployed.collusion = ColludingUtrpPair(
        remaining_channel=deployed.channel,
        stolen_channel=stolen_channel,
        budget=comm_budget,
    )
    deployed.server.comm_budget = comm_budget
    return deployed
