"""Reproducible randomness for Monte Carlo experiments.

Every stochastic component in this library takes an explicit
``numpy.random.Generator``. This module centralises how experiment
code derives independent, reproducible generators: one
:class:`numpy.random.SeedSequence` per experiment, spawned per trial,
so adding trials never perturbs earlier ones and any single trial can
be re-run in isolation from its ``(master_seed, index)`` coordinates.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = [
    "spawn_generators",
    "generator_for_trial",
    "derive_seed",
    "trial_seed_stream",
]


def spawn_generators(master_seed: int, count: int) -> List[np.random.Generator]:
    """``count`` statistically independent generators from one seed.

    Raises:
        ValueError: if ``count`` is negative.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    seq = np.random.SeedSequence(master_seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def generator_for_trial(master_seed: int, trial_index: int) -> np.random.Generator:
    """The generator trial ``trial_index`` of experiment ``master_seed``
    would receive from :func:`spawn_generators` — without materialising
    the preceding ones."""
    if trial_index < 0:
        raise ValueError("trial_index must be >= 0")
    seq = np.random.SeedSequence(master_seed)
    child = seq.spawn(trial_index + 1)[trial_index]
    return np.random.default_rng(child)


def trial_seed_stream(master_seed: int, trials: int) -> np.ndarray:
    """One 62-bit sub-seed per trial, as a ``uint64`` array.

    The whole stream is a pure function of ``(master_seed, trial
    index)``, generated in a single vectorised
    :class:`numpy.random.SeedSequence` expansion — the batched Monte
    Carlo kernels (:mod:`repro.simulation.batched`) derive *all* of a
    trial's randomness from its entry, which is what makes their
    results independent of ``batch_size`` chunking and trivially
    re-runnable per trial.

    Raises:
        ValueError: if ``trials`` is not positive.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    seq = np.random.SeedSequence(master_seed)
    return seq.generate_state(trials, dtype=np.uint64) >> np.uint64(2)


def derive_seed(master_seed: int, *coordinates: int) -> int:
    """A stable 62-bit sub-seed for nested experiment dimensions.

    Experiments sweeping a grid (``n``, ``m``, trial) use this to give
    every grid cell its own master seed deterministically.
    """
    seq = np.random.SeedSequence([master_seed, *coordinates])
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> np.uint64(2))
