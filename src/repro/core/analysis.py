"""TRP analysis: detection probability and optimal frame sizing.

Implements Sec. 4.3 of the paper:

* Theorem 1 — ``g(n, x, f)``, the probability that TRP detects a set
  with exactly ``x`` missing tags using frame size ``f``::

      g(n, x, f) = 1 - sum_{i=0}^{f} C(f,i) p^i (1-p)^{f-i} (1 - i/f)^x,
      p = e^{-(n-x)/f}

  (``N0 = i`` empty slots among the present tags' frame; each of the
  ``x`` missing tags dodges detection unless it hashes onto an empty
  slot).
* Lemma 1 — ``g`` is increasing in ``x`` (more thefts are easier to
  catch), so the binding case is ``x = m + 1`` (Theorem 2).
* Eq. 2 — the optimal frame size ``f* = min { f : g(n, m+1, f) > alpha }``.

The binomial expectation is evaluated vectorised over a mass-covering
window of the Binomial(f, p) support, so sizing stays fast even for
frames of tens of thousands of slots. A Poisson-approximation variant
is provided for the approximation-quality ablation.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from .numerics import binom_mass_window
from .parameters import MonitorRequirement

__all__ = [
    "detection_probability",
    "detection_probability_poisson",
    "partial_detection_probability",
    "expected_empty_slots",
    "optimal_trp_frame_size",
    "frame_size_for",
]

#: Probability mass allowed outside the truncated binomial window. The
#: dropped terms each contribute at most ``_TAIL_EPS`` to the sum, which
#: is far below every confidence granularity the paper uses.
_TAIL_EPS = 1e-12

# Below this per-slot emptiness, g <= f*p underflows to 0 at double
# precision — and scipy's boost-backed binom.pmf raises OverflowError
# on subnormal p (seen at n=1424, f=2), so short-circuit before it.
_P_UNDERFLOW = 1e-300

#: Upper bound for the frame-size search; Eq. 2 solutions for the
#: paper's whole grid sit below 10^4, so hitting this indicates misuse.
_MAX_FRAME = 1 << 26


def _occupancy_p(present: int, f: int, exact_occupancy: bool) -> float:
    """Probability a given slot is empty of the ``present`` tags.

    The paper's proof uses the exponential approximation
    ``p = e^{-(n-x)/f}``; the exact value is ``(1 - 1/f)^{n-x}``. Both
    are supported so the approximation error can be measured.
    """
    if exact_occupancy:
        return (1.0 - 1.0 / f) ** present if f > 1 else (0.0 if present else 1.0)
    return math.exp(-present / f)


def detection_probability(
    n: int, x: int, f: int, exact_occupancy: bool = False
) -> float:
    """``g(n, x, f)`` — Theorem 1.

    Args:
        n: total tags in the monitored set.
        x: how many of them are missing.
        f: TRP frame size.
        exact_occupancy: use the exact empty-slot probability
            ``(1-1/f)^{n-x}`` instead of the paper's ``e^{-(n-x)/f}``.

    Returns:
        Probability that the returned bitstring differs from the
        server's expectation, i.e. the theft is detected.

    Raises:
        ValueError: if ``x`` is outside ``[0, n]`` or ``f < 1``.
    """
    if not 0 <= x <= n:
        raise ValueError(f"x must be in [0, n]; got x={x}, n={n}")
    if f < 1:
        raise ValueError(f"frame size must be >= 1, got {f}")
    if x == 0:
        return 0.0
    present = n - x
    p = _occupancy_p(present, f, exact_occupancy)
    if p < _P_UNDERFLOW:
        return 0.0
    lo, hi = binom_mass_window(f, p, _TAIL_EPS)
    i = np.arange(lo, hi + 1)
    pmf = stats.binom.pmf(i, f, p)
    escape = (1.0 - i / f) ** x
    return float(1.0 - np.dot(pmf, escape))


def partial_detection_probability(
    n: int, x: int, f: int, polled: int, exact_occupancy: bool = False
) -> float:
    """``g`` restricted to a polled prefix — the salvage confidence.

    When a reader crashes after polling only the first ``polled`` of
    ``f`` slots, the returned prefix is still evidence: a missing tag
    is caught iff it hashed into a polled slot that no present tag
    occupies. Conditioning on the number of empty-of-present slots
    *within the prefix* (Binomial(``polled``, p) with the same per-slot
    emptiness ``p`` as Theorem 1) gives the exact analogue of Theorem 1::

        g_partial = 1 - sum_i C(polled,i) p^i (1-p)^{polled-i} (1 - i/f)^x

    At ``polled == f`` this reduces to :func:`detection_probability`;
    for shorter prefixes it is the *achieved* confidence the server
    reports for a salvaged round instead of discarding it.

    Raises:
        ValueError: if ``x`` is outside ``[0, n]``, ``f < 1`` or
            ``polled`` is outside ``[0, f]``.
    """
    if not 0 <= x <= n:
        raise ValueError(f"x must be in [0, n]; got x={x}, n={n}")
    if f < 1:
        raise ValueError(f"frame size must be >= 1, got {f}")
    if not 0 <= polled <= f:
        raise ValueError(f"polled must be in [0, f]; got {polled}, f={f}")
    if x == 0 or polled == 0:
        return 0.0
    present = n - x
    p = _occupancy_p(present, f, exact_occupancy)
    if p < _P_UNDERFLOW:
        return 0.0
    lo, hi = binom_mass_window(polled, p, _TAIL_EPS)
    i = np.arange(lo, hi + 1)
    pmf = stats.binom.pmf(i, polled, p)
    escape = (1.0 - i / f) ** x
    return float(1.0 - np.dot(pmf, escape))


def detection_probability_poisson(n: int, x: int, f: int) -> float:
    """Poisson-occupancy approximation of ``g(n, x, f)``.

    Treats each slot's emptiness as independent, so
    ``E[(1 - N0/f)^x] ~ (1 - p)^x`` with a second-order variance
    correction. Used by the approximation-quality ablation (Abl. E);
    cheap enough to evaluate inline during interactive planning.
    """
    if not 0 <= x <= n:
        raise ValueError(f"x must be in [0, n]; got x={x}, n={n}")
    if f < 1:
        raise ValueError(f"frame size must be >= 1, got {f}")
    if x == 0:
        return 0.0
    p = math.exp(-(n - x) / f)
    mean = p
    var = p * (1 - p) / f
    # E[(1 - N0/f)^x] expanded around the mean of N0/f.
    base = (1 - mean) ** x
    if x >= 2 and 1 - mean > 0:
        base += 0.5 * x * (x - 1) * (1 - mean) ** (x - 2) * var
    return float(min(max(1.0 - base, 0.0), 1.0))


def expected_empty_slots(n: int, x: int, f: int) -> float:
    """``E[N0] = f * e^{-(n-x)/f}`` — mean empty slots left by present tags."""
    if f < 1:
        raise ValueError(f"frame size must be >= 1, got {f}")
    return f * math.exp(-(n - x) / f)


def _solve_trp_frame_size(
    n: int, m: int, alpha: float, exact_occupancy: bool = False
) -> int:
    """Uncached Eq. 2 solver (exponential bracketing + binary search)."""
    req = MonitorRequirement(population=n, tolerance=m, confidence=alpha)
    x = req.critical_missing

    def ok(f: int) -> bool:
        return detection_probability(n, x, f, exact_occupancy) > alpha

    hi = 1
    while not ok(hi):
        hi *= 2
        if hi > _MAX_FRAME:
            raise ValueError(
                f"no frame size up to {_MAX_FRAME} satisfies "
                f"g({n}, {x}, f) > {alpha}"
            )
    lo = hi // 2  # ok(lo) is False (or lo == 0)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            hi = mid
        else:
            lo = mid
    # Guard against non-monotone wiggle: shrink while the predicate
    # still holds just below, then confirm the answer itself.
    while hi > 1 and ok(hi - 1):
        hi -= 1
    return hi


def optimal_trp_frame_size(
    n: int, m: int, alpha: float, exact_occupancy: bool = False
) -> int:
    """Eq. 2 — ``f* = min { f : g(n, m+1, f) > alpha }``.

    ``g`` is monotone non-decreasing in ``f`` at the scales of interest
    (more slots mean more empty slots for a missing tag to expose
    itself in), so the minimum is found with exponential bracketing and
    binary search; a final local scan guards against discreteness
    wiggles at very small frames.

    Results are memoised (and optionally persisted) by the shared
    :mod:`repro.core.plancache` default cache — identical plans across
    groups, figure cells and CLI invocations solve once.

    Raises:
        ValueError: on invalid ``(n, m, alpha)`` (delegated to
            :class:`MonitorRequirement`) or if no frame below the
            internal cap satisfies the requirement.
    """
    from .plancache import default_cache

    return default_cache().trp_frame_size(n, m, alpha, exact_occupancy)


def _clear_plan_cache() -> None:
    from .plancache import default_cache

    default_cache().clear_memory()


#: lru_cache-compatible knob (the microbench cold-sizing loop uses it).
optimal_trp_frame_size.cache_clear = _clear_plan_cache


def frame_size_for(req: MonitorRequirement, exact_occupancy: bool = False) -> int:
    """Convenience wrapper over :func:`optimal_trp_frame_size`."""
    return optimal_trp_frame_size(
        req.population, req.tolerance, req.confidence, exact_occupancy
    )
