"""Multi-round TRP planning: repeat small frames or run one big one?

A natural question the paper leaves open: instead of one frame sized
by Eq. 2, a server could run ``r`` *independent* TRP rounds (fresh
seeds) with smaller frames and alarm if any round mismatches. Missed
detections are independent across rounds (each round re-hashes every
tag with a fresh seed), so

    P(detect over r rounds) = 1 - (1 - g(n, x, f))^r .

This module sizes such plans and answers the trade-off: because
``g`` rises steeply and then saturates in ``f``, splitting the budget
over rounds is **never cheaper** at the paper's operating points — one
Eq. 2 frame beats ``r`` smaller ones in total slots (quantified by the
Abl. J bench) — but multi-round plans still earn their keep
operationally: they bound the *per-scan* downtime when a shelf cannot
be taken offline long enough for one big frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .analysis import detection_probability
from .parameters import MonitorRequirement

__all__ = [
    "repeated_detection_probability",
    "optimal_repeated_frame_size",
    "RoundsPlan",
    "plan_rounds",
]

_MAX_FRAME = 1 << 26


def repeated_detection_probability(
    n: int, x: int, frame_size: int, rounds: int
) -> float:
    """``1 - (1 - g(n, x, f))^r`` — detection over independent rounds.

    Raises:
        ValueError: if ``rounds`` is not positive (other validation is
            delegated to :func:`detection_probability`).
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    g = detection_probability(n, x, frame_size)
    return 1.0 - (1.0 - g) ** rounds


def optimal_repeated_frame_size(
    n: int, m: int, alpha: float, rounds: int
) -> int:
    """Minimal per-round frame so ``r`` rounds jointly clear ``alpha``.

    Equivalent to Eq. 2 with the per-round requirement relaxed to
    ``1 - (1-alpha)^(1/r)``.

    Raises:
        ValueError: on invalid ``(n, m, alpha)`` or ``rounds``.
    """
    MonitorRequirement(population=n, tolerance=m, confidence=alpha)
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    x = m + 1

    def ok(f: int) -> bool:
        return repeated_detection_probability(n, x, f, rounds) > alpha

    hi = 1
    while not ok(hi):
        hi *= 2
        if hi > _MAX_FRAME:
            raise ValueError("no feasible per-round frame size")
    lo = hi // 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            hi = mid
        else:
            lo = mid
    while hi > 1 and ok(hi - 1):
        hi -= 1
    return hi


@dataclass(frozen=True)
class RoundsPlan:
    """A fully-specified multi-round monitoring plan.

    Attributes:
        rounds: number of independent TRP rounds per check.
        frame_size: per-round frame.
        total_slots: ``rounds * frame_size`` — the cost to compare
            against the single-round Eq. 2 plan.
        achieved_confidence: joint detection probability at the
            worst-case theft.
    """

    rounds: int
    frame_size: int
    total_slots: int
    achieved_confidence: float


def plan_rounds(
    n: int, m: int, alpha: float, max_rounds: int = 5
) -> List[RoundsPlan]:
    """Enumerate plans for 1..``max_rounds`` rounds at equal confidence.

    Raises:
        ValueError: on invalid inputs.
    """
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    plans: List[RoundsPlan] = []
    for r in range(1, max_rounds + 1):
        f = optimal_repeated_frame_size(n, m, alpha, r)
        plans.append(
            RoundsPlan(
                rounds=r,
                frame_size=f,
                total_slots=r * f,
                achieved_confidence=repeated_detection_probability(
                    n, m + 1, f, r
                ),
            )
        )
    return plans
