"""The paper's contribution: TRP and UTRP with their analyses.

Import order matters: the pure math (parameters, analysis,
utrp_analysis, verification) loads before the protocol engines, which
reach back into :mod:`repro.server` — keeping the package import graph
acyclic even under partial initialisation.
"""

from .parameters import MonitorRequirement
from .analysis import (
    detection_probability,
    detection_probability_poisson,
    expected_empty_slots,
    frame_size_for,
    optimal_trp_frame_size,
)
from .utrp_analysis import (
    DEFAULT_SLACK_SLOTS,
    CollusionBudget,
    expected_sync_slots,
    optimal_utrp_frame_size,
    utrp_detection_probability,
)
from .plancache import PlanCache, configure_default_cache, default_cache
from .verification import Verdict, VerificationResult, compare_bitstrings
from .trp import TrpRoundReport, run_trp_round
from .utrp import (
    UtrpRoundReport,
    default_timer,
    estimate_scan_time_bounds,
    run_utrp_round,
)
from .estimation import (
    StrictAlarmPolicy,
    ThresholdAlarmPolicy,
    estimate_missing_count,
    expected_mismatch_slots,
)
from .rounds import (
    RoundsPlan,
    optimal_repeated_frame_size,
    plan_rounds,
    repeated_detection_probability,
)
from .identification import (
    MissingTagIdentifier,
    RoundEvidence,
    confirmed_missing_in_round,
    identification_probability,
    rounds_to_identify,
)
from .calibration import CalibrationResult, calibrate_trp_frame_size
from .monitor import Alert, MonitoringServer
from .groups import GroupAlert, GroupSweepReport, GroupedMonitor

__all__ = [
    "MonitorRequirement",
    "detection_probability",
    "detection_probability_poisson",
    "expected_empty_slots",
    "frame_size_for",
    "optimal_trp_frame_size",
    "DEFAULT_SLACK_SLOTS",
    "CollusionBudget",
    "expected_sync_slots",
    "optimal_utrp_frame_size",
    "PlanCache",
    "configure_default_cache",
    "default_cache",
    "utrp_detection_probability",
    "Verdict",
    "VerificationResult",
    "compare_bitstrings",
    "TrpRoundReport",
    "run_trp_round",
    "UtrpRoundReport",
    "estimate_scan_time_bounds",
    "run_utrp_round",
    "default_timer",
    "Alert",
    "MonitoringServer",
    "StrictAlarmPolicy",
    "ThresholdAlarmPolicy",
    "estimate_missing_count",
    "expected_mismatch_slots",
    "GroupAlert",
    "GroupSweepReport",
    "GroupedMonitor",
    "RoundsPlan",
    "optimal_repeated_frame_size",
    "plan_rounds",
    "repeated_detection_probability",
    "MissingTagIdentifier",
    "RoundEvidence",
    "confirmed_missing_in_round",
    "identification_probability",
    "rounds_to_identify",
    "CalibrationResult",
    "calibrate_trp_frame_size",
]
