"""Empirical frame-size calibration.

Eq. 2 assumes the tag hash is uniform and Theorem 1's binomial model
of empty slots. Both hold for this library's splitmix64 hash (and are
property-tested), but a deployment with a weaker on-chip hash — or a
correlated ID space — may want to size frames against *measured*
detection rates instead of the closed form.
:func:`calibrate_trp_frame_size` does exactly that: Monte Carlo
bisection over ``f`` until the simulated worst-case detection clears
``alpha`` with statistical confidence.

It doubles as an end-to-end validation of Eq. 2: calibrated and
analytic frame sizes agree within a few slots on the paper's grid
(asserted in the tests and the fidelity bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..simulation.fastpath import trp_detection_trials
from ..simulation.metrics import wilson_interval
from .parameters import MonitorRequirement

__all__ = ["CalibrationResult", "calibrate_trp_frame_size"]

_MAX_FRAME = 1 << 24


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of an empirical sizing run.

    Attributes:
        frame_size: the calibrated ``f``.
        measured_rate: detection rate at ``frame_size`` in the final
            confirmation batch.
        ci_low / ci_high: Wilson bounds of that measurement.
        trials_spent: total Monte Carlo trials consumed.
        probes: every ``(f, rate)`` pair evaluated (diagnostics).
    """

    frame_size: int
    measured_rate: float
    ci_low: float
    ci_high: float
    trials_spent: int
    probes: List


def calibrate_trp_frame_size(
    n: int,
    m: int,
    alpha: float,
    rng: np.random.Generator,
    trials_per_probe: int = 800,
    confirmation_trials: Optional[int] = None,
) -> CalibrationResult:
    """Size the TRP frame by measurement instead of Theorem 1.

    Exponential bracketing then bisection on the *measured* worst-case
    detection rate; a probe passes when its Wilson lower bound clears
    ``alpha - sampling slack`` (point estimate above ``alpha`` and the
    interval not clearly below). A final confirmation batch at the
    chosen ``f`` reports the achieved rate.

    Args:
        n, m, alpha: the monitoring requirement.
        rng: Monte Carlo randomness.
        trials_per_probe: batch size per candidate ``f``.
        confirmation_trials: final measurement size (default: twice the
            probe size).

    Raises:
        ValueError: on an invalid requirement or non-positive trial
            counts, or if no feasible frame is found below the cap.
    """
    MonitorRequirement(population=n, tolerance=m, confidence=alpha)
    if trials_per_probe <= 0:
        raise ValueError("trials_per_probe must be positive")
    confirm = (
        confirmation_trials
        if confirmation_trials is not None
        else 2 * trials_per_probe
    )
    if confirm <= 0:
        raise ValueError("confirmation_trials must be positive")

    probes: List = []
    spent = 0

    def measure(f: int, trials: int) -> float:
        nonlocal spent
        spent += trials
        rate = float(trp_detection_trials(n, m + 1, f, trials, rng).mean())
        probes.append((f, rate))
        return rate

    def passes(f: int) -> bool:
        rate = measure(f, trials_per_probe)
        hits = int(round(rate * trials_per_probe))
        lo, _hi = wilson_interval(hits, trials_per_probe)
        # Accept when the point estimate clears alpha and the interval
        # is not decisively below it.
        return rate > alpha and lo > alpha - 0.02

    hi = max(8, n // 4)
    while not passes(hi):
        hi *= 2
        if hi > _MAX_FRAME:
            raise ValueError("no feasible frame size below the cap")
    lo = hi // 2
    while hi - lo > max(1, hi // 200):
        mid = (lo + hi) // 2
        if passes(mid):
            hi = mid
        else:
            lo = mid

    rate = measure(hi, confirm)
    hits = int(round(rate * confirm))
    ci_lo, ci_hi = wilson_interval(hits, confirm)
    return CalibrationResult(
        frame_size=hi,
        measured_rate=rate,
        ci_low=ci_lo,
        ci_high=ci_hi,
        trials_spent=spent,
        probes=probes,
    )
