"""UTRP analysis: collusion-aware detection probability and frame sizing.

Implements Sec. 5.4 of the paper. The adversary splits the set into
``s1`` (kept, ``n - m - 1`` tags, scanned by the dishonest reader R1)
and ``s2`` (stolen, ``m + 1`` tags, scanned by the collaborator R2).
The server's timer allows the pair to synchronise on at most ``c``
empty slots, after which R1 must finish alone. The analysis quantities:

* Theorem 3 — by the time R1 has *seen* ``c`` empty slots it has
  *walked* ``c' = c / e^{-(n-m-1)/f}`` slots in expectation (empty slots
  arrive at rate ``p``).
* Theorem 4 — ``x``, the stolen tags that would reply after slot ``c'``,
  is Binomial(``m+1``, ``1 - c'/f``). These are the thefts that remain
  *detectable*; stolen tags hashing into the synchronised prefix are
  faithfully merged into the bitstring by the collaborator.
* Theorem 5 — ``y``, the kept tags replying after slot ``c'``, is
  Binomial(``n-m-1``, ``1 - c'/f``). Only they contribute occupancy to
  the unsynchronised suffix.
* Eq. 3 — detection probability
  ``sum_{i,j} Pr(x=i) Pr(y=j) g(i+j, i, f - c') > alpha`` determines the
  minimal frame size; the paper then adds a few slack slots (5-10)
  because ``c'`` is an expectation.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from .numerics import binom_mass_window
from .parameters import MonitorRequirement

__all__ = [
    "CollusionBudget",
    "expected_sync_slots",
    "utrp_detection_probability",
    "optimal_utrp_frame_size",
    "DEFAULT_SLACK_SLOTS",
]

#: Extra slots the paper adds on top of Eq. 3's optimum ("between 5-10
#: slots", Sec. 6) to absorb the expectation-based estimate of ``c'``.
DEFAULT_SLACK_SLOTS = 8

_TAIL_EPS = 1e-10
_MAX_FRAME = 1 << 26


class CollusionBudget:
    """How much inter-reader coordination the server's timer permits.

    ``c = (t - STmin) / tcomm`` (Sec. 5.4): with timer ``t``, minimum
    honest scan time ``STmin`` and per-exchange latency ``tcomm``, the
    colluding readers can afford ``c`` synchronisations. Experiments
    normally specify ``c`` directly (the paper uses ``c = 20``); this
    class also derives it from timing for the timer ablation.
    """

    def __init__(self, sync_slots: int):
        if sync_slots < 0:
            raise ValueError(f"sync budget must be >= 0, got {sync_slots}")
        self.sync_slots = sync_slots

    @classmethod
    def from_timing(
        cls, timer: float, min_scan_time: float, comm_time: float
    ) -> "CollusionBudget":
        """Derive ``c`` from the server timer and channel latencies.

        Raises:
            ValueError: if the timer is shorter than the minimum honest
                scan time (no honest reader could ever answer) or the
                communication latency is not positive.
        """
        if comm_time <= 0:
            raise ValueError("comm_time must be positive")
        if timer < min_scan_time:
            raise ValueError(
                "timer shorter than the minimum honest scan time; "
                "honest readers would always be rejected"
            )
        return cls(int((timer - min_scan_time) / comm_time))


def expected_sync_slots(n: int, m: int, f: int, c: int) -> float:
    """Theorem 3 — expected slots walked before ``c`` empties are seen.

    ``c' = c / p`` with ``p = e^{-(n-m-1)/f}``, capped at ``f`` (the
    budget may outlast the frame, in which case the whole bitstring is
    synchronised and the attack is undetectable).
    """
    if f < 1:
        raise ValueError(f"frame size must be >= 1, got {f}")
    if c < 0:
        raise ValueError(f"c must be >= 0, got {c}")
    p_empty = math.exp(-(n - m - 1) / f)
    if p_empty <= 0.0:
        return float(f)
    return min(float(f), c / p_empty)


def utrp_detection_probability(n: int, m: int, f: int, c: int) -> float:
    """Eq. 3's left-hand side — detection probability under collusion.

    Evaluates ``sum_{i,j} Pr(x=i) Pr(y=j) g(i+j, i, f-c')`` vectorised:
    for each surviving-kept-tag count ``j`` the inner binomial
    expectation over empty slots is one matrix product against the
    escape powers ``(1 - k/F)^i``.

    Returns 0.0 outright when the sync budget covers the whole frame
    (``c' >= f``): every slot was coordinated, nothing distinguishes
    the split set from an intact one.

    Raises:
        ValueError: on invalid shapes (``m + 1 >= n``, non-positive
            frame, negative budget).
    """
    if not 0 <= m < n - 1:
        raise ValueError(f"need 0 <= m < n-1; got n={n}, m={m}")
    if f < 1:
        raise ValueError(f"frame size must be >= 1, got {f}")
    if c < 0:
        raise ValueError(f"c must be >= 0, got {c}")

    c_prime = expected_sync_slots(n, m, f, c)
    if c_prime >= f:
        return 0.0
    f_eff = max(int(round(f - c_prime)), 1)
    q = 1.0 - c_prime / f  # a tag replies after the synchronised prefix

    stolen = m + 1
    kept = n - m - 1
    i_vals = np.arange(0, stolen + 1)
    px = stats.binom.pmf(i_vals, stolen, q)

    j_lo, j_hi = binom_mass_window(kept, q, _TAIL_EPS)
    j_vals = np.arange(j_lo, j_hi + 1)
    py = stats.binom.pmf(j_vals, kept, q)

    total = 0.0
    for j, pj in zip(j_vals, py):
        if pj < 1e-15:
            continue
        p_empty = math.exp(-j / f_eff)
        k_lo, k_hi = binom_mass_window(f_eff, p_empty, _TAIL_EPS)
        k = np.arange(k_lo, k_hi + 1)
        pmf_k = stats.binom.pmf(k, f_eff, p_empty)
        # escape[i, k] = (1 - k/f_eff)^i. A saturated frame (k = f_eff)
        # gets log weight -1e300: exp(0 * .) = 1 keeps the i = 0 row at
        # (anything)^0 = 1 while any i >= 1 collapses to 0.
        with np.errstate(divide="ignore"):
            logs = np.where(k < f_eff, np.log1p(-k / f_eff), -1e300)
        escape = np.exp(np.outer(i_vals, logs))
        g_by_i = 1.0 - escape @ pmf_k
        total += pj * float(px @ g_by_i)
    return float(min(max(total, 0.0), 1.0))


def _solve_utrp_frame_size(
    n: int, m: int, alpha: float, c: int, slack: int = DEFAULT_SLACK_SLOTS
) -> int:
    """Uncached Eq. 3 solver (exponential bracketing + binary search)."""
    MonitorRequirement(population=n, tolerance=m, confidence=alpha)
    if m + 1 >= n:
        raise ValueError("UTRP analysis needs m + 1 < n (a non-empty kept set)")
    if slack < 0:
        raise ValueError(f"slack must be >= 0, got {slack}")

    def ok(f: int) -> bool:
        return utrp_detection_probability(n, m, f, c) > alpha

    hi = 1
    while not ok(hi):
        hi *= 2
        if hi > _MAX_FRAME:
            raise ValueError(
                f"no frame size up to {_MAX_FRAME} satisfies Eq. 3 for "
                f"n={n}, m={m}, alpha={alpha}, c={c}"
            )
    lo = hi // 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            hi = mid
        else:
            lo = mid
    while hi > 1 and ok(hi - 1):
        hi -= 1
    return hi + slack


def optimal_utrp_frame_size(
    n: int, m: int, alpha: float, c: int, slack: int = DEFAULT_SLACK_SLOTS
) -> int:
    """Minimal ``f`` satisfying Eq. 3, plus the paper's slack slots.

    Search mirrors :func:`repro.core.analysis.optimal_trp_frame_size`:
    exponential bracketing, binary search, then a local scan to absorb
    discreteness in ``c'`` rounding. Eq. 3 evaluations cost tens of
    milliseconds each, so results are memoised (and optionally
    persisted) by the shared :mod:`repro.core.plancache` default cache.

    Raises:
        ValueError: on invalid parameters or when no frame below the
            internal cap satisfies the requirement.
    """
    from .plancache import default_cache

    return default_cache().utrp_frame_size(n, m, alpha, c, slack)


def _clear_plan_cache() -> None:
    from .plancache import default_cache

    default_cache().clear_memory()


#: lru_cache-compatible knob (mirrors the TRP sizing function).
optimal_utrp_frame_size.cache_clear = _clear_plan_cache
