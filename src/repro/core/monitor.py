"""The monitoring server: the paper's deployment loop in one object.

:class:`MonitoringServer` owns the database, the seed issuer and the
``(n, m, alpha)`` requirement, and exposes the two operations a
deployment performs: register the set once, then repeatedly check it —
with TRP when the reader is trusted, UTRP when it is not. Alerts
(``> m`` tags missing, or a rejected UTRP proof) are delivered to a
caller-supplied callback, matching Sec. 1's "the server will issue a
warning if the number of missing tags exceeds the threshold".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..rfid.channel import SlottedChannel
from ..rfid.reader import TrustedReader
from ..rfid.timing import LinkTiming, UNIT_SLOTS
from ..server.audit import AuditLog
from ..server.database import TagDatabase
from ..server.seeds import SeedIssuer
from .analysis import frame_size_for
from .estimation import AlarmPolicy, StrictAlarmPolicy
from .parameters import MonitorRequirement
from .trp import TrpRoundReport, run_trp_round
from .utrp import ResyncReport, UtrpRoundReport, run_counter_resync, run_utrp_round
from .utrp_analysis import optimal_utrp_frame_size
from .verification import AlarmConfirmation, Verdict, VerificationResult

__all__ = ["Alert", "MonitoringServer"]


@dataclass(frozen=True)
class Alert:
    """A warning raised to the operator.

    Attributes:
        round_index: which check (0-based) raised it.
        protocol: "TRP" or "UTRP".
        result: the verification evidence behind the alarm.
    """

    round_index: int
    protocol: str
    result: VerificationResult

    def describe(self) -> str:
        return (
            f"round {self.round_index} [{self.protocol}]: "
            f"{self.result.verdict.value}"
            + (
                f", {len(self.result.mismatched_slots)} mismatched slots"
                if self.result.mismatched_slots
                else ""
            )
        )


class MonitoringServer:
    """End-to-end server: registration, planning, checking, alerting."""

    def __init__(
        self,
        requirement: MonitorRequirement,
        rng: Optional[np.random.Generator] = None,
        on_alert: Optional[Callable[[Alert], None]] = None,
        comm_budget: int = 20,
        timing: LinkTiming = UNIT_SLOTS,
        counter_tags: bool = False,
        alarm_policy: Optional[AlarmPolicy] = None,
        audit: Optional[AuditLog] = None,
        confirmation: Optional[AlarmConfirmation] = None,
        salvage_partial: bool = False,
    ):
        """Args:
            requirement: the ``(n, m, alpha)`` policy.
            rng: randomness for seed issuance (reproducible runs pass
                a seeded generator).
            on_alert: callback for every alarm; alerts are also kept in
                :attr:`alerts`.
            comm_budget: collusion budget ``c`` UTRP planning assumes.
            timing: link model for UTRP timers.
            counter_tags: whether the deployed tags are UTRP-grade
                (hardware counter). Required for :meth:`check_utrp`;
                makes :meth:`check_trp` counter-aware so mixed
                schedules stay in sync.
            alarm_policy: when a scan comes back NOT_INTACT, decides
                whether to page the operator. Defaults to the paper's
                strict rule (any mismatch); pass
                :class:`~repro.core.estimation.ThresholdAlarmPolicy`
                to stay silent for estimated losses within ``m``.
                Rejected proofs (late / malformed) always page.
            audit: optional append-only log; the server records every
                registration, verdict and alert in it (seed values are
                deliberately never logged — a leaked log must not
                enable replay).
            confirmation: optional k-of-r alarm-confirmation vote.
                NOT_INTACT verdicts feed the vote and page only when
                the quorum is met, suppressing channel-induced false
                alarms; rejected proofs (late / malformed) bypass the
                vote — they indicate reader misbehaviour, not loss.
            salvage_partial: verify crashed readers' partial frames at
                their achieved confidence instead of rejecting them.
        """
        self.requirement = requirement
        self.database = TagDatabase()
        self.issuer = SeedIssuer(rng)
        self.comm_budget = comm_budget
        self.timing = timing
        self.counter_tags = counter_tags
        self.alarm_policy: AlarmPolicy = (
            alarm_policy if alarm_policy is not None else StrictAlarmPolicy()
        )
        self.audit = audit
        self.confirmation = confirmation
        self.salvage_partial = salvage_partial
        self.alerts: List[Alert] = []
        self._on_alert = on_alert
        self._rounds = 0
        #: Population epoch — 0 for the paper's static set, bumped by
        #: every :meth:`apply_membership` delta.
        self.population_epoch = 0
        #: Applied membership deltas, in order. Each entry records the
        #: round count at apply time (``at_round``) so a deterministic
        #: restore (shard failover) can interleave membership replay
        #: with challenge replay.
        self.membership_log: List[dict] = []

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------

    def register(self, tag_ids, labels=None) -> None:
        """Record the monitored set's IDs (once; sets are static).

        Raises:
            ValueError: if the number of IDs does not match the
                requirement's population.
        """
        ids = list(tag_ids)
        if len(ids) != self.requirement.population:
            raise ValueError(
                f"requirement expects n={self.requirement.population} tags, "
                f"got {len(ids)} IDs"
            )
        self.database.register_set(ids, labels)
        if self.audit is not None:
            self.audit.record(
                "set-registered",
                population=len(ids),
                tolerance=self.requirement.tolerance,
                confidence=self.requirement.confidence,
            )

    def apply_membership(
        self,
        op: str,
        tag_ids,
        replacement_ids=None,
        labels=None,
    ) -> int:
        """Apply one membership delta; returns the new population epoch.

        The delta is atomic from the verifier's point of view: the
        requirement's ``n``, the database and the epoch move together,
        so the next issued challenge is already sized (Eq. 2 / Eq. 3,
        via the plan cache — O(1) for a previously seen ``n``) for the
        post-delta set. Commissioned tags enter the counter mirror at
        ``ct = 0``, a factory-fresh tag's hardware counter.

        Args:
            op: ``"commission"``, ``"decommission"`` or ``"replace"``.
            tag_ids: new IDs for commission; outgoing IDs otherwise.
            replacement_ids: incoming IDs for replace (aligned with
                ``tag_ids``); must be absent for the other ops.
            labels: optional labels for the incoming IDs.

        Raises:
            ValueError: on an unknown op, malformed ID lists, or a
                delta that would leave ``n <= m`` (the requirement
                would be unsatisfiable).
            KeyError: decommissioning / replacing an unregistered ID.
        """
        ids = [int(i) for i in tag_ids]
        reps = [int(i) for i in (replacement_ids or [])]
        if not ids:
            raise ValueError("membership delta must name at least one tag")
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate tag IDs in membership delta")
        n = self.requirement.population
        if op == "commission":
            if reps:
                raise ValueError("commission takes no replacement_ids")
            new_n = n + len(ids)
        elif op == "decommission":
            if reps:
                raise ValueError("decommission takes no replacement_ids")
            new_n = n - len(ids)
        elif op == "replace":
            if len(reps) != len(ids):
                raise ValueError(
                    "replace needs one replacement ID per outgoing ID"
                )
            if set(reps) & set(ids):
                raise ValueError("a tag cannot replace itself")
            new_n = n
        else:
            raise ValueError(f"unknown membership op {op!r}")
        # Validate the post-delta requirement *before* mutating state,
        # so a delta that would leave n <= m rejects atomically.
        new_requirement = MonitorRequirement(
            new_n, self.requirement.tolerance, self.requirement.confidence
        )
        if op == "commission":
            self.database.commission(ids, labels)
        elif op == "decommission":
            self.database.decommission(ids)
        else:
            self.database.decommission(ids)
            self.database.commission(reps, labels)
        self.requirement = new_requirement
        self.population_epoch += 1
        self.membership_log.append(
            {
                "epoch": self.population_epoch,
                "op": op,
                "tag_ids": ids,
                "replacement_ids": reps,
                "labels": list(labels) if labels is not None else None,
                "at_round": self._rounds,
            }
        )
        if self.audit is not None:
            self.audit.record(
                "membership",
                epoch=self.population_epoch,
                op=op,
                tags=len(ids),
                population=new_n,
            )
        return self.population_epoch

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    @property
    def trp_frame_size(self) -> int:
        """Eq. 2's optimal frame size for this requirement."""
        return frame_size_for(self.requirement)

    @property
    def utrp_frame_size(self) -> int:
        """Eq. 3's optimal frame size (plus slack) for this requirement."""
        return optimal_utrp_frame_size(
            self.requirement.population,
            self.requirement.tolerance,
            self.requirement.confidence,
            self.comm_budget,
        )

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------

    def check_trp(
        self,
        channel: Optional[SlottedChannel],
        reader: Optional[TrustedReader] = None,
        frame_size: Optional[int] = None,
        challenge=None,
        scan_fn=None,
    ) -> TrpRoundReport:
        """Run a trusted-reader check against a physical population.

        ``challenge`` / ``scan_fn`` support remote operation (the serve
        layer issues the challenge over the wire, then verifies the
        returned bitstring through this path); ``channel`` may be
        ``None`` when ``scan_fn`` supplies the scan.
        """
        report = run_trp_round(
            self.database,
            self.issuer,
            self.requirement,
            channel,
            reader=reader,
            frame_size=frame_size,
            counter_aware=self.counter_tags,
            salvage_partial=self.salvage_partial,
            challenge=challenge,
            scan_fn=scan_fn,
        )
        self._register_outcome("TRP", report.result)
        return report

    def check_utrp(
        self,
        channel: Optional[SlottedChannel],
        reader: Optional[TrustedReader] = None,
        frame_size: Optional[int] = None,
        timer: Optional[float] = None,
        scan_fn=None,
        challenge=None,
    ) -> UtrpRoundReport:
        """Run an untrusted-reader check; ``scan_fn`` lets tests inject
        a dishonest reader in place of the honest scan, and
        ``challenge`` verifies against a pre-issued challenge (the
        serve layer's remote rounds).

        Raises:
            RuntimeError: if the deployment's tags lack the hardware
                counter UTRP requires (Sec. 5.2's assumption).
        """
        if not self.counter_tags:
            raise RuntimeError(
                "UTRP requires counter-capable tags; construct "
                "MonitoringServer(counter_tags=True) for such a deployment"
            )
        report = run_utrp_round(
            self.database,
            self.issuer,
            self.requirement,
            channel,
            comm_budget=self.comm_budget,
            reader=reader,
            frame_size=frame_size,
            timer=timer,
            scan_fn=scan_fn,
            timing=self.timing,
            challenge=challenge,
        )
        self._register_outcome("UTRP", report.result)
        return report

    def resync_counters(
        self,
        channel: SlottedChannel,
        max_offset: int = 8,
        max_rounds: int = 8,
        frame_size: Optional[int] = None,
        reader=None,
    ) -> ResyncReport:
        """Recover a desynchronised counter population (see
        :func:`~repro.core.utrp.run_counter_resync`).

        Clears the alarm-confirmation window on success — the alarms
        the vote was accumulating were symptoms of the desync, not of a
        theft — and audits the handshake either way.

        Raises:
            RuntimeError: for a deployment without counter tags
                (nothing to resync).
        """
        if not self.counter_tags:
            raise RuntimeError("resync only applies to counter-tag deployments")
        report = run_counter_resync(
            self.database,
            self.issuer,
            channel,
            max_offset=max_offset,
            max_rounds=max_rounds,
            frame_size=frame_size,
            reader=reader,
        )
        if report.complete and self.confirmation is not None:
            self.confirmation.reset()
        if self.audit is not None:
            self.audit.record(
                "counter-resync",
                rounds=report.rounds_run,
                recovered=len(report.recovered),
                unresolved=len(report.unresolved),
                ambiguous=len(report.ambiguous),
            )
        return report

    def register_remote_timeout(
        self, protocol: str, frame_size: int, elapsed: float = 0.0
    ) -> VerificationResult:
        """Record a remote round whose proof never arrived in time.

        The serve layer's Theorem-5 path: when a networked reader blows
        the challenge deadline entirely (no bitstring at all), the
        round's verdict is ``REJECTED_LATE`` and the operator is paged
        through the same alert machinery as any in-process rejection.
        The counter mirror is deliberately *not* advanced — the server
        cannot know whether the broadcasts ever reached the tags, and a
        set that did hear them is later repaired by
        :meth:`resync_counters`.
        """
        result = VerificationResult(
            Verdict.REJECTED_LATE, [], frame_size, elapsed
        )
        self._register_outcome(protocol, result)
        return result

    def _register_outcome(self, protocol: str, result: VerificationResult) -> None:
        round_index = self._rounds
        self._rounds += 1
        if self.audit is not None:
            self.audit.record(
                "verdict",
                round=round_index,
                protocol=protocol,
                verdict=result.verdict.value,
                frame_size=result.frame_size,
                mismatched_slots=len(result.mismatched_slots),
            )
        if not result.verdict.alarm:
            if self.confirmation is not None:
                self.confirmation.observe(False)
            return
        if result.verdict is Verdict.NOT_INTACT and not self.alarm_policy.should_alarm(
            len(result.mismatched_slots),
            self.requirement.population,
            result.frame_size,
        ):
            if self.confirmation is not None:
                self.confirmation.observe(False)
            return  # sub-threshold loss under a tolerant policy
        # Rejected proofs bypass the vote: lateness and malformed
        # payloads are reader misbehaviour, not channel noise.
        if self.confirmation is not None and result.verdict is Verdict.NOT_INTACT:
            if not self.confirmation.observe(True):
                if self.audit is not None:
                    self.audit.record(
                        "alarm-suppressed",
                        round=round_index,
                        protocol=protocol,
                        votes=self.confirmation.votes,
                        quorum=self.confirmation.quorum,
                    )
                return
        alert = Alert(round_index, protocol, result)
        self.alerts.append(alert)
        if self.audit is not None:
            self.audit.record(
                "alert",
                round=round_index,
                protocol=protocol,
                verdict=result.verdict.value,
            )
        if self._on_alert is not None:
            self._on_alert(alert)

    @property
    def rounds_run(self) -> int:
        return self._rounds
