"""Missing-count estimation and alarm policies (extension).

The paper's server alarms on *any* bitstring mismatch. That rule gives
the one-sided guarantee of Eq. 1 (``> m`` missing is caught w.p.
``> alpha``), but it also fires — with moderate probability — when only
one or two tags are missing, which the introduction explicitly wants to
tolerate ("it is impractical to notify the retailer each time there is
a single RFID tag missing"). The paper does not spell out how the
server distinguishes a sub-threshold loss from a breach.

This module supplies the natural completion: the *number* of
mismatched slots is itself an estimator of how many tags are missing.
A slot mismatches exactly when every tag that picked it is missing, so

    E[mismatches | x missing] = f * (1 - e^{-x/f}) * e^{-(n-x)/f}

which is strictly increasing in ``x`` and invertible. The
:class:`ThresholdAlarmPolicy` alarms only when the inverted estimate
exceeds ``m``, keeping routine sub-threshold losses silent at the cost
of a weaker worst-case guarantee right at ``x = m + 1`` (quantified by
the Abl. F bench; see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import optimize

__all__ = [
    "expected_mismatch_slots",
    "estimate_missing_count",
    "AlarmPolicy",
    "StrictAlarmPolicy",
    "ThresholdAlarmPolicy",
]


def expected_mismatch_slots(n: int, x: int, f: int) -> float:
    """Mean number of expected-1/observed-0 slots with ``x`` missing.

    A slot betrays the theft iff at least one *missing* tag picked it
    and no *present* tag did.

    Raises:
        ValueError: if ``x`` is outside ``[0, n]`` or ``f < 1``.
    """
    if not 0 <= x <= n:
        raise ValueError(f"x must be in [0, n]; got x={x}, n={n}")
    if f < 1:
        raise ValueError(f"frame size must be >= 1, got {f}")
    return f * (1.0 - math.exp(-x / f)) * math.exp(-(n - x) / f)


def estimate_missing_count(mismatches: int, n: int, f: int) -> float:
    """Invert :func:`expected_mismatch_slots` to estimate ``x``.

    Args:
        mismatches: count of slots where the server expected occupancy
            and saw none.
        n: registered population size.
        f: frame size of the scan.

    Returns:
        The (real-valued) ``x`` whose expected mismatch count equals
        the observation; 0.0 for a clean scan. Clamped to ``[0, n]``.

    Raises:
        ValueError: on a negative mismatch count or bad ``(n, f)``.
    """
    if mismatches < 0:
        raise ValueError("mismatches must be >= 0")
    if f < 1:
        raise ValueError(f"frame size must be >= 1, got {f}")
    if mismatches == 0:
        return 0.0
    ceiling = expected_mismatch_slots(n, n, f)
    if mismatches >= ceiling:
        return float(n)

    def gap(x: float) -> float:
        return (
            f * (1.0 - math.exp(-x / f)) * math.exp(-(n - x) / f) - mismatches
        )

    return float(optimize.brentq(gap, 0.0, float(n)))


class AlarmPolicy:
    """Decides whether a NOT_INTACT scan pages the operator."""

    def should_alarm(self, mismatches: int, n: int, f: int) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class StrictAlarmPolicy(AlarmPolicy):
    """The paper's rule: any mismatch alarms.

    Preserves the Eq. 1 guarantee exactly; sub-threshold losses may
    page the operator.
    """

    def should_alarm(self, mismatches: int, n: int, f: int) -> bool:
        return mismatches > 0

    def describe(self) -> str:
        return "strict (any mismatch alarms — the paper's rule)"


@dataclass(frozen=True)
class ThresholdAlarmPolicy(AlarmPolicy):
    """Alarm only when the estimated missing count exceeds ``m``.

    Attributes:
        tolerance: ``m``.
        margin: subtracted from the estimate before comparing, trading
            false silence for fewer false pages (0 = neutral).
    """

    tolerance: int
    margin: float = 0.0

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("tolerance must be >= 0")

    def should_alarm(self, mismatches: int, n: int, f: int) -> bool:
        estimate = estimate_missing_count(mismatches, n, f)
        return estimate - self.margin > self.tolerance

    def describe(self) -> str:
        return (
            f"threshold (page only when estimated missing > {self.tolerance})"
        )
