"""UTRP — the UnTrusted Reader Protocol (Sec. 5, Algs. 5-7).

One round:

1. the server sizes the frame from Eq. 3, pre-commits the seed list
   ``r_1..r_f``, and starts a timer (Alg. 5 lines 1, 5);
2. the reader walks the frame, re-seeding the remaining tags with
   ``f' = f - sn`` after every occupied slot (Alg. 6) while every tag
   ticks its counter on every broadcast (Alg. 7);
3. the server replays the cascade over its mirrored counters, checks
   the proof arrived in time, compares bitstrings, and — only when the
   scan verifies or at least ran — commits the updated counters.

Counter bookkeeping on rejection: the tags' physical counters advanced
during the scan whether or not the proof verified, so the server must
commit the replayed counters even for a NOT_INTACT verdict; otherwise
every later round would desynchronise. A proof that never came back
(timeout with no bitstring) is the one case needing operator
intervention, surfaced as ``REJECTED_LATE``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..rfid.channel import SlottedChannel
from ..rfid.reader import ScanResult, TrustedReader
from ..rfid.timing import LinkTiming, UNIT_SLOTS
from ..server.database import TagDatabase
from ..server.seeds import SeedIssuer, UtrpChallenge
from ..server.verifier import expected_utrp_bitstring
from .parameters import MonitorRequirement
from .utrp_analysis import optimal_utrp_frame_size
from .verification import Verdict, VerificationResult, compare_bitstrings

__all__ = ["UtrpRoundReport", "run_utrp_round", "estimate_scan_time_bounds"]


def estimate_scan_time_bounds(
    frame_size: int, population: int, timing: LinkTiming = UNIT_SLOTS
) -> tuple:
    """``(STmin, STmax)`` — honest scan-time envelope (Sec. 5.4).

    STmin assumes every slot is empty (one broadcast, ``f`` empty
    slots); STmax assumes the densest cascade: every present tag group
    occupies a slot, each occupied slot triggers a re-seed broadcast
    and a payload burst. The server sets its timer to STmax.
    """
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    if population < 0:
        raise ValueError("population must be >= 0")
    st_min = frame_size * timing.empty_slot_us + timing.seed_broadcast_us
    occupied = min(population, frame_size)
    st_max = (
        (frame_size - occupied) * timing.empty_slot_us
        + occupied * (timing.reply_slot_us + 16 * timing.bit_us)
        + (1 + occupied) * timing.seed_broadcast_us
    )
    return (st_min, max(st_min, st_max))


@dataclass
class UtrpRoundReport:
    """Everything one UTRP round produced.

    Attributes:
        challenge: frame size, pre-committed seeds, timer.
        scan: the reader's raw scan.
        result: the server's verdict (including timer enforcement).
        seeds_consumed_expected: seeds the honest cascade uses — the
            verifier's replay count, exposed for auditing.
    """

    challenge: UtrpChallenge
    scan: ScanResult
    result: VerificationResult
    seeds_consumed_expected: int

    @property
    def intact(self) -> bool:
        return self.result.intact

    @property
    def slots_used(self) -> int:
        return self.scan.slots_used


def run_utrp_round(
    database: TagDatabase,
    issuer: SeedIssuer,
    requirement: MonitorRequirement,
    channel: SlottedChannel,
    comm_budget: int = 20,
    reader: Optional[TrustedReader] = None,
    frame_size: Optional[int] = None,
    timer: Optional[float] = None,
    scan_fn: Optional[Callable[[UtrpChallenge], tuple]] = None,
    timing: LinkTiming = UNIT_SLOTS,
) -> UtrpRoundReport:
    """Run one UTRP round end to end.

    Args:
        database: server records (IDs + mirrored counters).
        issuer: seed source for the pre-committed list.
        requirement: ``(n, m, alpha)``; sizes the frame via Eq. 3.
        channel: the physical population an honest reader would scan.
        comm_budget: the ``c`` Eq. 3 defends against (paper: 20).
        reader: honest reader used when ``scan_fn`` is not given.
        frame_size: explicit override of the Eq. 3 frame size.
        timer: explicit timer override; defaults to STmax for the
            issued frame.
        scan_fn: alternative scan procedure — adversaries inject their
            attack here; must return ``(ScanResult, elapsed)``.
        timing: link timing model used for the default timer and for
            the honest reader's reported elapsed time.

    Raises:
        ValueError: if the requirement population does not match the
            database.
    """
    if requirement.population != database.size:
        raise ValueError(
            f"requirement says n={requirement.population} but database "
            f"holds {database.size} tags"
        )
    f = (
        frame_size
        if frame_size is not None
        else optimal_utrp_frame_size(
            requirement.population,
            requirement.tolerance,
            requirement.confidence,
            comm_budget,
        )
    )
    st_min, st_max = estimate_scan_time_bounds(f, requirement.population, timing)
    challenge = issuer.utrp_challenge(f, timer if timer is not None else st_max)

    if scan_fn is not None:
        scan, elapsed = scan_fn(challenge)
    else:
        scanner = reader if reader is not None else TrustedReader()
        air_time_before = timing.session_us(channel.stats)
        scan = scanner.scan_utrp(channel, challenge.frame_size, challenge.seeds)
        elapsed = timing.session_us(channel.stats) - air_time_before

    prediction = expected_utrp_bitstring(
        database.ids, database.counters, challenge.frame_size, challenge.seeds
    )
    if elapsed > challenge.timer:
        result = VerificationResult(
            Verdict.REJECTED_LATE, [], challenge.frame_size, elapsed
        )
    else:
        result = compare_bitstrings(
            prediction.bitstring, scan.bitstring, challenge.frame_size, elapsed
        )
    # The physical tags heard the broadcasts regardless of the verdict;
    # keep the mirror in sync (see module docstring).
    database.set_counters(prediction.counters)
    return UtrpRoundReport(
        challenge=challenge,
        scan=scan,
        result=result,
        seeds_consumed_expected=prediction.seeds_used,
    )
