"""UTRP — the UnTrusted Reader Protocol (Sec. 5, Algs. 5-7).

One round:

1. the server sizes the frame from Eq. 3, pre-commits the seed list
   ``r_1..r_f``, and starts a timer (Alg. 5 lines 1, 5);
2. the reader walks the frame, re-seeding the remaining tags with
   ``f' = f - sn`` after every occupied slot (Alg. 6) while every tag
   ticks its counter on every broadcast (Alg. 7);
3. the server replays the cascade over its mirrored counters, checks
   the proof arrived in time, compares bitstrings, and — only when the
   scan verifies or at least ran — commits the updated counters.

Counter bookkeeping on rejection: the tags' physical counters advanced
during the scan whether or not the proof verified, so the server must
commit the replayed counters even for a NOT_INTACT verdict; otherwise
every later round would desynchronise. A proof that never came back
(timeout with no bitstring) is the one case needing operator
intervention, surfaced as ``REJECTED_LATE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..rfid.channel import SlottedChannel
from ..rfid.hashing import slots_for_tags_with_counters
from ..rfid.reader import ScanResult, TrustedReader
from ..rfid.timing import LinkTiming, UNIT_SLOTS
from ..server.database import TagDatabase
from ..server.seeds import SeedIssuer, UtrpChallenge
from ..server.verifier import expected_utrp_bitstring
from .parameters import MonitorRequirement
from .utrp_analysis import optimal_utrp_frame_size
from .verification import Verdict, VerificationResult, compare_bitstrings

__all__ = [
    "UtrpRoundReport",
    "run_utrp_round",
    "estimate_scan_time_bounds",
    "default_timer",
    "ResyncReport",
    "run_counter_resync",
]


def estimate_scan_time_bounds(
    frame_size: int, population: int, timing: LinkTiming = UNIT_SLOTS
) -> tuple:
    """``(STmin, STmax)`` — honest scan-time envelope (Sec. 5.4).

    STmin assumes every slot is empty (one broadcast, ``f`` empty
    slots); STmax assumes the densest cascade: every present tag group
    occupies a slot, each occupied slot triggers a re-seed broadcast
    and a payload burst. The server sets its timer to STmax.
    """
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    if population < 0:
        raise ValueError("population must be >= 0")
    st_min = frame_size * timing.empty_slot_us + timing.seed_broadcast_us
    occupied = min(population, frame_size)
    st_max = (
        (frame_size - occupied) * timing.empty_slot_us
        + occupied * (timing.reply_slot_us + 16 * timing.bit_us)
        + (1 + occupied) * timing.seed_broadcast_us
    )
    return (st_min, max(st_min, st_max))


def default_timer(
    frame_size: int, population: int, timing: LinkTiming = UNIT_SLOTS
) -> float:
    """The server's default UTRP timer: STmax for the issued frame.

    Alg. 5 line 5 arms the timer against the *slowest honest* scan, so
    the deadline is the dense-cascade bound of
    :func:`estimate_scan_time_bounds`. Every deployment path — the
    in-process :func:`run_utrp_round` and the networked
    :mod:`repro.serve` session — must compute the deadline through this
    one helper so a remote round is held to exactly the budget an
    in-process round would be (pinned by a test).

    Raises:
        ValueError: via :func:`estimate_scan_time_bounds` on a
            non-positive frame or negative population.
    """
    return estimate_scan_time_bounds(frame_size, population, timing)[1]


@dataclass
class UtrpRoundReport:
    """Everything one UTRP round produced.

    Attributes:
        challenge: frame size, pre-committed seeds, timer.
        scan: the reader's raw scan.
        result: the server's verdict (including timer enforcement).
        seeds_consumed_expected: seeds the honest cascade uses — the
            verifier's replay count, exposed for auditing.
    """

    challenge: UtrpChallenge
    scan: ScanResult
    result: VerificationResult
    seeds_consumed_expected: int

    @property
    def intact(self) -> bool:
        return self.result.intact

    @property
    def slots_used(self) -> int:
        return self.scan.slots_used


def run_utrp_round(
    database: TagDatabase,
    issuer: SeedIssuer,
    requirement: MonitorRequirement,
    channel: Optional[SlottedChannel],
    comm_budget: int = 20,
    reader: Optional[TrustedReader] = None,
    frame_size: Optional[int] = None,
    timer: Optional[float] = None,
    scan_fn: Optional[Callable[[UtrpChallenge], tuple]] = None,
    timing: LinkTiming = UNIT_SLOTS,
    challenge: Optional[UtrpChallenge] = None,
) -> UtrpRoundReport:
    """Run one UTRP round end to end.

    Args:
        database: server records (IDs + mirrored counters).
        issuer: seed source for the pre-committed list.
        requirement: ``(n, m, alpha)``; sizes the frame via Eq. 3.
        channel: the physical population an honest reader would scan.
        comm_budget: the ``c`` Eq. 3 defends against (paper: 20).
        reader: honest reader used when ``scan_fn`` is not given.
        frame_size: explicit override of the Eq. 3 frame size.
        timer: explicit timer override; defaults to
            :func:`default_timer` for the issued frame.
        scan_fn: alternative scan procedure — adversaries inject their
            attack here; must return ``(ScanResult, elapsed)``.
        timing: link timing model used for the default timer and for
            the honest reader's reported elapsed time.
        challenge: a pre-issued challenge to verify against instead of
            issuing a fresh one — the serve layer issues its challenge
            over the wire *before* the bitstring exists, then verifies
            through this path so both halves share one verdict rule.

    Raises:
        ValueError: if the requirement population does not match the
            database.
    """
    if requirement.population != database.size:
        raise ValueError(
            f"requirement says n={requirement.population} but database "
            f"holds {database.size} tags"
        )
    if challenge is None:
        f = (
            frame_size
            if frame_size is not None
            else optimal_utrp_frame_size(
                requirement.population,
                requirement.tolerance,
                requirement.confidence,
                comm_budget,
            )
        )
        challenge = issuer.utrp_challenge(
            f,
            timer
            if timer is not None
            else default_timer(f, requirement.population, timing),
        )

    if scan_fn is not None:
        scan, elapsed = scan_fn(challenge)
    else:
        scanner = reader if reader is not None else TrustedReader()
        air_time_before = timing.session_us(channel.stats)
        scan = scanner.scan_utrp(channel, challenge.frame_size, challenge.seeds)
        elapsed = timing.session_us(channel.stats) - air_time_before

    prediction = expected_utrp_bitstring(
        database.ids, database.counters, challenge.frame_size, challenge.seeds
    )
    if elapsed > challenge.timer:
        result = VerificationResult(
            Verdict.REJECTED_LATE, [], challenge.frame_size, elapsed
        )
    else:
        result = compare_bitstrings(
            prediction.bitstring, scan.bitstring, challenge.frame_size, elapsed
        )
    # The physical tags heard the broadcasts regardless of the verdict;
    # keep the mirror in sync (see module docstring).
    database.set_counters(prediction.counters)
    return UtrpRoundReport(
        challenge=challenge,
        scan=scan,
        result=result,
        seeds_consumed_expected=prediction.seeds_used,
    )


# ----------------------------------------------------------------------
# counter resynchronisation (graceful recovery from lost broadcasts)
# ----------------------------------------------------------------------


@dataclass
class ResyncReport:
    """Outcome of one bounded counter-resync handshake.

    Attributes:
        rounds_run: probe rounds actually executed (early exit once
            every tag's offset is pinned down).
        frame_size: probe frame used (sparse by design so wrong
            hypotheses die quickly).
        recovered: tag IDs whose counter offset was uniquely resolved,
            mapped to the offset (broadcasts the tag had missed).
        unresolved: tag IDs with no surviving hypothesis — tags that
            never answered a probe, i.e. genuinely missing or faded.
        ambiguous: tag IDs with more than one surviving hypothesis
            after the round budget (their mirror is committed with the
            smallest surviving offset; rerun with more rounds to pin).
    """

    rounds_run: int
    frame_size: int
    recovered: Dict[int, int] = field(default_factory=dict)
    unresolved: List[int] = field(default_factory=list)
    ambiguous: List[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every registered tag resolved to one offset."""
        return not self.unresolved and not self.ambiguous


def run_counter_resync(
    database: TagDatabase,
    issuer: SeedIssuer,
    channel: SlottedChannel,
    max_offset: int = 8,
    max_rounds: int = 8,
    frame_size: Optional[int] = None,
    reader: Optional[TrustedReader] = None,
) -> ResyncReport:
    """Recover a desynchronised UTRP population's counters.

    A tag that misses a re-seed broadcast (burst interference, power
    fade) stops ticking while the server's mirror keeps advancing, so
    its physical counter sits *below* the mirror by its personal offset
    ``d``. Sec. 5's design has no recovery path — every later round
    mismatches forever. This handshake restores sync without trusting
    the reader with IDs:

    1. the server assumes every tag's offset lies in ``[0, max_offset]``
       (the bound: how many broadcasts a tag could plausibly miss);
    2. each probe round issues a fresh seed over a deliberately sparse
       frame and polls the whole frame. Every surviving hypothesis
       ``d`` predicts a specific slot for its tag; hypotheses pointing
       at slots observed *empty* are eliminated (a powered tag always
       answers its own slot);
    3. after at most ``max_rounds`` probes (stopping early once every
       tag is pinned), the mirror is committed to the physically-heard
       count ``mirror + rounds - d``.

    A wrong hypothesis survives a probe only by pointing at a slot some
    other tag occupied — probability roughly ``1 - e^{-n/f}`` per round
    — so the sparse default frame (8 slots per tag) resolves a
    population in a handful of rounds. Tags with *no* surviving
    hypothesis never answered a probe: they are reported unresolved and
    their mirror is left at the no-missed-broadcast commitment, so an
    actually-missing tag keeps alarming instead of being silently
    absorbed by the recovery.

    Raises:
        ValueError: on a non-positive bound/budget or an empty database.
    """
    if max_offset < 0:
        raise ValueError("max_offset must be >= 0")
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    n = database.size
    if n == 0:
        raise ValueError("cannot resync an empty database")
    f = frame_size if frame_size is not None else max(64, 8 * n)
    scanner = reader if reader is not None else TrustedReader()
    ids = np.asarray(database.ids, dtype=np.uint64)
    mirror = np.asarray(database.counters, dtype=np.int64)

    # alive[i, d] — can tag i still plausibly have missed d broadcasts?
    alive = np.ones((n, max_offset + 1), dtype=bool)

    rounds_run = 0
    for probe in range(1, max_rounds + 1):
        challenge = issuer.trp_challenge(f)
        scan = scanner.scan_trp(channel, f, challenge.seed)
        rounds_run = probe
        occupied = scan.bitstring.astype(bool)
        for d in range(max_offset + 1):
            column = alive[:, d]
            if not column.any():
                continue
            # A tag that missed d broadcasts replies with counter
            # mirror - d + probe (it heard this probe's broadcast too).
            slots = slots_for_tags_with_counters(
                ids[column], challenge.seed, f, mirror[column] - d + probe
            )
            alive[column, d] &= occupied[slots]
        if (alive.sum(axis=1) <= 1).all():
            break

    survivors = alive.sum(axis=1)
    # Commit: unique offset where resolved; smallest surviving offset
    # when ambiguous; d = 0 (no missed broadcasts) when nothing
    # survived, so a genuinely missing tag keeps mismatching loudly.
    best = np.where(
        survivors > 0, np.argmax(alive, axis=1), 0
    ).astype(np.int64)
    database.set_counters(mirror + rounds_run - best)

    report = ResyncReport(rounds_run=rounds_run, frame_size=f)
    for i in range(n):
        tag = int(ids[i])
        if survivors[i] == 0:
            report.unresolved.append(tag)
        elif survivors[i] == 1:
            report.recovered[tag] = int(best[i])
        else:
            report.ambiguous.append(tag)
    return report
