"""Monitoring requirement: the ``(n, m, alpha)`` triple of Sec. 3.

Every planning and verification function in :mod:`repro.core` takes a
:class:`MonitorRequirement`, which validates the paper's constraints
once so the math modules don't have to re-check.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MonitorRequirement"]


@dataclass(frozen=True)
class MonitorRequirement:
    """What the server demands of the monitoring protocol.

    Attributes:
        population: ``n`` — number of tags in the monitored set ``T*``.
        tolerance: ``m`` — up to this many missing tags the set still
            counts as intact.
        confidence: ``alpha`` — lower bound on the probability that a
            *not intact* set (``> m`` missing) is detected.

    The adversary-relevant quantity is :attr:`critical_missing`
    (``m + 1``): the paper proves (Lemma 1 + Theorem 2) that if the
    protocol detects exactly ``m + 1`` missing tags with probability
    ``> alpha``, it does so for every larger theft too.
    """

    population: int
    tolerance: int
    confidence: float

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError(f"population must be >= 1, got {self.population}")
        if not 0 <= self.tolerance < self.population:
            raise ValueError(
                f"tolerance must be in [0, population), got {self.tolerance}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )

    @property
    def critical_missing(self) -> int:
        """``m + 1`` — the hardest theft size to detect (Theorem 2)."""
        return self.tolerance + 1

    def describe(self) -> str:
        return (
            f"n={self.population} tags, tolerate m={self.tolerance} missing, "
            f"detect >m with confidence alpha={self.confidence}"
        )
