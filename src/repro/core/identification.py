"""Missing-tag identification (extension).

The paper's protocols answer *whether* more than ``m`` tags are
missing. Once the alarm fires, the operator's next question is *which*
tags are gone — the problem the follow-on literature (missing-tag
identification) took up. This module implements the natural
TRP-compatible identifier, using two observations about a bitstring
round with seed ``r`` and frame ``f``:

* an expected-occupied slot observed **empty** condemns *every*
  registered tag hashing there: any present one would have replied —
  so those tags are **confirmed missing** (no false positives, ever,
  on a reliable channel);
* an occupied slot only proves *some* tag in it is present, so
  presence is never confirmed for an individual tag — a missing tag
  can hide behind a present slot-mate indefinitely.

Each extra round re-hashes everyone with a fresh seed, so a missing
tag escapes confirmation in one round only if it shares its slot with
a present tag — probability ``~ 1 - e^{-(n-x)/f}`` — and escapes ``k``
rounds with the ``k``-th power of that. :func:`rounds_to_identify`
inverts this to plan how many rounds confirm the whole missing set
with a target probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Set

import numpy as np

from ..rfid.hashing import slots_for_tags

__all__ = [
    "RoundEvidence",
    "confirmed_missing_in_round",
    "MissingTagIdentifier",
    "identification_probability",
    "rounds_to_identify",
]


@dataclass(frozen=True)
class RoundEvidence:
    """What one TRP round contributes to identification.

    Attributes:
        confirmed_missing: tag IDs condemned by empty expected-occupied
            slots this round.
        suspicious_slots: the slots that condemned them.
    """

    confirmed_missing: Set[int]
    suspicious_slots: List[int]


def confirmed_missing_in_round(
    registered_ids: np.ndarray,
    frame_size: int,
    seed: int,
    observed_bitstring: np.ndarray,
) -> RoundEvidence:
    """Extract the round's confirmed-missing set.

    Args:
        registered_ids: every ID the server registered.
        frame_size: the round's ``f``.
        seed: the round's ``r``.
        observed_bitstring: what the reader returned.

    Raises:
        ValueError: if the bitstring length does not match the frame.
    """
    ids = np.asarray(registered_ids, dtype=np.uint64)
    observed = np.asarray(observed_bitstring)
    if observed.shape != (frame_size,):
        raise ValueError(
            f"bitstring length {observed.shape} does not match frame "
            f"{frame_size}"
        )
    slots = slots_for_tags(ids, seed, frame_size)
    expected_occupied = np.zeros(frame_size, dtype=bool)
    expected_occupied[slots] = True
    betrayed = expected_occupied & (observed == 0)
    condemned_mask = betrayed[slots]
    return RoundEvidence(
        confirmed_missing=set(int(i) for i in ids[condemned_mask]),
        suspicious_slots=np.nonzero(betrayed)[0].tolist(),
    )


class MissingTagIdentifier:
    """Accumulates identification evidence across TRP rounds.

    Feed it each round's ``(f, r, observed_bitstring)``; it maintains
    the union of confirmed-missing tags and estimates coverage.
    """

    def __init__(self, registered_ids: Sequence[int]):
        self._ids = np.asarray(list(registered_ids), dtype=np.uint64)
        if len(np.unique(self._ids)) != len(self._ids):
            raise ValueError("registered IDs must be unique")
        self._confirmed: Set[int] = set()
        self._rounds = 0

    @property
    def rounds_observed(self) -> int:
        return self._rounds

    @property
    def confirmed_missing(self) -> Set[int]:
        """Tags proven missing so far (never a false positive on a
        reliable channel)."""
        return set(self._confirmed)

    def ingest(
        self, frame_size: int, seed: int, observed_bitstring: np.ndarray
    ) -> RoundEvidence:
        """Add one round's bitstring and return its fresh evidence."""
        evidence = confirmed_missing_in_round(
            self._ids, frame_size, seed, observed_bitstring
        )
        self._confirmed |= evidence.confirmed_missing
        self._rounds += 1
        return evidence

    def coverage(self, missing_estimate: int, frame_size: int) -> float:
        """Estimated probability that a given missing tag has been
        confirmed by now (see :func:`identification_probability`)."""
        n = len(self._ids)
        return identification_probability(
            n, missing_estimate, frame_size, self._rounds
        )


def identification_probability(
    n: int, x: int, frame_size: int, rounds: int
) -> float:
    """P(a specific missing tag is confirmed within ``rounds`` rounds).

    Per round the tag is confirmed iff no present tag shares its slot:
    ``p = (approximately) e^{-(n-x)/f}``; rounds are independent.

    Raises:
        ValueError: on invalid shapes.
    """
    if not 0 <= x <= n:
        raise ValueError(f"x must be in [0, n]; got x={x}, n={n}")
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    p = math.exp(-(n - x) / frame_size)
    return 1.0 - (1.0 - p) ** rounds


def rounds_to_identify(
    n: int, x: int, frame_size: int, beta: float = 0.99
) -> int:
    """Rounds needed so *all* ``x`` missing tags are confirmed w.p. > beta.

    Uses a union bound: per-tag miss probability must fall below
    ``(1 - beta) / x``.

    Raises:
        ValueError: on invalid inputs or an unidentifiable setup
            (``p = 0``).
    """
    if not 0 < x <= n:
        raise ValueError("x must be in (0, n]")
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    if frame_size < 1:
        raise ValueError("frame_size must be >= 1")
    p = math.exp(-(n - x) / frame_size)
    if p <= 0.0:
        raise ValueError("frame too small: confirmation probability is 0")
    if p >= 1.0:
        return 1
    target = (1.0 - beta) / x
    return max(1, math.ceil(math.log(target) / math.log(1.0 - p)))
