"""TRP — the Trusted Reader Protocol (Sec. 4, Algs. 1-3).

One round:

1. the server picks the frame size from Eq. 2 and issues a fresh
   ``(f, r)`` (:class:`~repro.server.seeds.SeedIssuer`);
2. the reader broadcasts it and walks the frame, recording occupancy
   (:meth:`~repro.rfid.reader.TrustedReader.scan_trp`);
3. the server predicts the intact bitstring from its ID database and
   compares (:func:`~repro.server.verifier.expected_trp_bitstring`).

This module wires those three into a round runner used by the examples
and the protocol-level tests; large Monte Carlo sweeps use the
vectorised :mod:`repro.simulation.fastpath` instead (validated against
this path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..rfid.channel import SlottedChannel
from ..rfid.reader import ScanResult, TrustedReader
from ..server.database import TagDatabase
from ..server.seeds import SeedIssuer, TrpChallenge
from ..server.verifier import (
    expected_trp_bitstring,
    expected_trp_bitstring_with_counters,
)
from .analysis import frame_size_for
from .parameters import MonitorRequirement
from .verification import (
    VerificationResult,
    compare_bitstrings,
    salvage_partial_scan,
)

__all__ = ["TrpRoundReport", "run_trp_round"]


@dataclass
class TrpRoundReport:
    """Everything one TRP round produced.

    Attributes:
        challenge: the ``(f, r)`` the server issued.
        scan: the reader's raw scan (bitstring + slot accounting).
        result: the server's verdict.
    """

    challenge: TrpChallenge
    scan: ScanResult
    result: VerificationResult

    @property
    def intact(self) -> bool:
        return self.result.intact

    @property
    def slots_used(self) -> int:
        return self.scan.slots_used


def run_trp_round(
    database: TagDatabase,
    issuer: SeedIssuer,
    requirement: MonitorRequirement,
    channel: Optional[SlottedChannel],
    reader: Optional[TrustedReader] = None,
    frame_size: Optional[int] = None,
    counter_aware: bool = False,
    salvage_partial: bool = False,
    challenge: Optional[TrpChallenge] = None,
    scan_fn: Optional[Callable[[TrpChallenge], ScanResult]] = None,
) -> TrpRoundReport:
    """Run one honest TRP round end to end.

    Args:
        database: the server's registered IDs (defines the prediction).
        issuer: seed source; guarantees the round's ``r`` is fresh.
        requirement: ``(n, m, alpha)``; sizes the frame via Eq. 2
            unless ``frame_size`` overrides it.
        channel: the physical tag population being scanned.
        reader: honest reader (a default one is created if omitted).
        frame_size: explicit frame size override (experiments sweeping
            ``f`` use this; normal operation lets Eq. 2 decide).
        counter_aware: set True when the population is UTRP-grade
            (counter) tags — the prediction then folds each tag's
            ticked counter into the hash and commits the bump, keeping
            mixed TRP/UTRP schedules on one set in sync.
        salvage_partial: when the reader crashes mid-frame and returns
            a prefix, verify the polled slots at their achieved
            confidence (:func:`~repro.core.verification.
            salvage_partial_scan`) instead of rejecting the round as
            malformed.
        challenge: a pre-issued ``(f, r)`` to verify against instead of
            issuing a fresh one (the serve layer sends its challenge
            over the wire before the scan exists).
        scan_fn: alternative scan procedure returning a
            :class:`~repro.rfid.reader.ScanResult`; when given, the
            channel is never touched (the bitstring arrived from a
            remote reader).

    Raises:
        ValueError: if the requirement's population does not match the
            database (a misconfigured deployment).
    """
    if requirement.population != database.size:
        raise ValueError(
            f"requirement says n={requirement.population} but database "
            f"holds {database.size} tags"
        )
    if challenge is None:
        f = frame_size if frame_size is not None else frame_size_for(requirement)
        challenge = issuer.trp_challenge(f)
    if scan_fn is not None:
        scan = scan_fn(challenge)
    else:
        scanner = reader if reader is not None else TrustedReader()
        scan = scanner.scan_trp(channel, challenge.frame_size, challenge.seed)
    if counter_aware:
        expected, new_counters = expected_trp_bitstring_with_counters(
            database.ids, database.counters, challenge.frame_size, challenge.seed
        )
    else:
        expected = expected_trp_bitstring(
            database.ids, challenge.frame_size, challenge.seed
        )
        new_counters = None
    if salvage_partial and scan.bitstring.size < challenge.frame_size:
        result = salvage_partial_scan(
            expected,
            scan.bitstring,
            challenge.frame_size,
            requirement.population,
            requirement.critical_missing,
        )
    else:
        result = compare_bitstrings(
            expected, scan.bitstring, challenge.frame_size
        )
    if new_counters is not None:
        database.set_counters(new_counters)
    return TrpRoundReport(challenge=challenge, scan=scan, result=result)
