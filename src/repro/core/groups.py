"""Multi-group monitoring: many sets, one operator view.

The paper's contribution list (Sec. 1, point 4) highlights that —
unlike the yoking-proof line, whose per-tag timers hard-wire a group
size — this monitoring technique "can accommodate different sized
groups of tags". :class:`GroupedMonitor` makes that concrete: each
group (a shelf, a pallet, a stockroom) gets its own
:class:`~repro.core.monitor.MonitoringServer` with its own
``(n, m, alpha)`` policy, reader-trust level and alarm policy, while
alerts funnel into one place and a scan sweep covers every group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..rfid.channel import SlottedChannel
from .estimation import AlarmPolicy
from .monitor import Alert, MonitoringServer
from .parameters import MonitorRequirement

__all__ = ["GroupAlert", "GroupSweepReport", "GroupedMonitor"]


@dataclass(frozen=True)
class GroupAlert:
    """An alert, qualified with the group that raised it."""

    group: str
    alert: Alert

    def describe(self) -> str:
        return f"[{self.group}] {self.alert.describe()}"


@dataclass
class GroupSweepReport:
    """Outcome of checking every group once.

    Attributes:
        intact_groups: groups whose scan verified.
        flagged_groups: groups whose scan raised an alert this sweep.
        total_slots: combined slot cost of the sweep.
    """

    intact_groups: List[str]
    flagged_groups: List[str]
    total_slots: int

    @property
    def all_intact(self) -> bool:
        return not self.flagged_groups


class GroupedMonitor:
    """Monitors several independently-sized tag groups."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        on_alert: Optional[Callable[[GroupAlert], None]] = None,
    ):
        self._rng = rng if rng is not None else np.random.default_rng()
        self._servers: Dict[str, MonitoringServer] = {}
        self._untrusted: Dict[str, bool] = {}
        self.alerts: List[GroupAlert] = []
        self._on_alert = on_alert

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def add_group(
        self,
        name: str,
        requirement: MonitorRequirement,
        tag_ids,
        counter_tags: bool = True,
        untrusted_reader: bool = False,
        comm_budget: int = 20,
        alarm_policy: Optional[AlarmPolicy] = None,
    ) -> MonitoringServer:
        """Register a new group with its own policy.

        Args:
            name: unique group label (appears in alerts).
            requirement: the group's ``(n, m, alpha)``.
            tag_ids: the group's registered IDs.
            counter_tags: whether this group's tags are UTRP-grade.
            untrusted_reader: check this group with UTRP during sweeps.
            comm_budget: collusion budget for UTRP planning.
            alarm_policy: per-group paging rule.

        Raises:
            ValueError: on a duplicate name, or requesting UTRP sweeps
                for non-counter tags.
        """
        if name in self._servers:
            raise ValueError(f"group {name!r} already exists")
        if untrusted_reader and not counter_tags:
            raise ValueError("UTRP sweeps need counter-capable tags")

        def forward(alert: Alert, group=name) -> None:
            wrapped = GroupAlert(group=group, alert=alert)
            self.alerts.append(wrapped)
            if self._on_alert is not None:
                self._on_alert(wrapped)

        server = MonitoringServer(
            requirement,
            rng=self._rng,
            on_alert=forward,
            comm_budget=comm_budget,
            counter_tags=counter_tags,
            alarm_policy=alarm_policy,
        )
        server.register(list(tag_ids))
        self._servers[name] = server
        self._untrusted[name] = untrusted_reader
        return server

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def groups(self) -> List[str]:
        return list(self._servers)

    def server(self, name: str) -> MonitoringServer:
        """The per-group server (e.g. for frame-size planning).

        Raises:
            KeyError: on an unknown group.
        """
        return self._servers[name]

    def planned_sweep_slots(self) -> int:
        """Total slots one sweep of every group will cost."""
        total = 0
        for name, server in self._servers.items():
            total += (
                server.utrp_frame_size
                if self._untrusted[name]
                else server.trp_frame_size
            )
        return total

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------

    def sweep(self, channels: Dict[str, SlottedChannel]) -> GroupSweepReport:
        """Check every group once against its physical channel.

        Groups flagged this sweep are those whose check appended an
        alert (per the group's alarm policy).

        Raises:
            KeyError: if a channel is missing for any group.
        """
        intact: List[str] = []
        flagged: List[str] = []
        total_slots = 0
        for name, server in self._servers.items():
            channel = channels[name]
            alerts_before = len(self.alerts)
            if self._untrusted[name]:
                report = server.check_utrp(channel)
            else:
                report = server.check_trp(channel)
            total_slots += report.slots_used
            if len(self.alerts) > alerts_before:
                flagged.append(name)
            else:
                intact.append(name)
        return GroupSweepReport(
            intact_groups=intact,
            flagged_groups=flagged,
            total_slots=total_slots,
        )
