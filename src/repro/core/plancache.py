"""Two-level frame-plan cache for the Eq. 2 / Eq. 3 sizing solvers.

Frame planning is the analytic hot spot of every sweep: a single Eq. 3
evaluation costs tens of milliseconds and the binary search runs a few
dozen of them, yet fleets of groups and repeated figure reruns keep
asking for the *same* ``(protocol, n, m, alpha, ...)`` plans. This
module answers those lookups from two layers:

* an in-memory LRU (shared process-wide via :func:`default_cache`),
  which `repro.core.analysis.optimal_trp_frame_size` and
  `repro.core.utrp_analysis.optimal_utrp_frame_size` route through —
  so *every* caller (figures, fleet, CLI ``plan``) hits it without
  opting in;
* an optional on-disk JSON store (``--plan-cache PATH`` on the CLI),
  schema-versioned, so warm plans survive across processes — a fleet
  campaign or a fig4–fig7 rerun starts with yesterday's plans solved.

Corrupted files, stale schemas and malformed entries are never fatal:
they count against :attr:`PlanCache.stats` and the plan is recomputed
(and rewritten) instead. Hit/miss counters can be published live into
an obs :class:`~repro.obs.metrics.MetricsRegistry` via
:meth:`PlanCache.bind_metrics`.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional

from .utrp_analysis import DEFAULT_SLACK_SLOTS

__all__ = [
    "PLAN_CACHE_SCHEMA",
    "PlanCache",
    "default_cache",
    "configure_default_cache",
]

#: Schema tag written to (and required of) on-disk plan caches. Bump on
#: any change to key format or entry semantics; files carrying another
#: tag are ignored wholesale and rebuilt.
PLAN_CACHE_SCHEMA = "repro.plancache/v1"

#: Default in-memory LRU width. Plans are a dozen bytes each; 64k
#: entries cover the paper's full grid hundreds of times over while
#: bounding adversarial key churn.
DEFAULT_MAX_ENTRIES = 1 << 16


def _trp_key(n: int, m: int, alpha: float, exact_occupancy: bool) -> str:
    return f"trp:n={n}:m={m}:alpha={alpha!r}:exact={int(exact_occupancy)}"


def _utrp_key(n: int, m: int, alpha: float, c: int, slack: int) -> str:
    return f"utrp:n={n}:m={m}:alpha={alpha!r}:c={c}:slack={slack}"


class PlanCache:
    """Memory-LRU + optional JSON-file cache of optimal frame sizes.

    Thread-safe; the solvers themselves run outside the lock so a slow
    Eq. 3 search never blocks unrelated lookups.

    Attributes:
        path: the disk store location (``None`` = memory only).
        stats: monotonic counters — ``memory_hits``, ``disk_hits``,
            ``misses``, ``disk_errors`` (corrupt/stale files),
            ``invalid_entries`` (malformed values inside a valid file).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        autosave: bool = True,
    ):
        """Raises:
            ValueError: if ``max_entries`` is not positive.
        """
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.path = path
        self.autosave = autosave
        self._max_entries = max_entries
        self._lock = threading.RLock()
        self._memory: "OrderedDict[str, int]" = OrderedDict()
        self._disk: Dict[str, int] = {}
        self._registry = None
        self.stats: Dict[str, int] = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "disk_errors": 0,
            "invalid_entries": 0,
        }
        if path is not None:
            self._load_disk()

    # ------------------------------------------------------------------
    # disk layer
    # ------------------------------------------------------------------

    def _load_disk(self) -> None:
        """Best-effort load; any corruption degrades to an empty store."""
        if self.path is None or not os.path.exists(self.path):
            return
        try:
            with open(self.path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self._count("disk_errors")
            return
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != PLAN_CACHE_SCHEMA
            or not isinstance(payload.get("entries"), dict)
        ):
            self._count("disk_errors")
            return
        for key, value in payload["entries"].items():
            if isinstance(key, str) and isinstance(value, int) and value >= 1:
                self._disk[key] = value
            else:
                self._count("invalid_entries")

    def save(self) -> None:
        """Atomically persist the disk layer (no-op when memory-only)."""
        if self.path is None:
            return
        with self._lock:
            payload = {
                "schema": PLAN_CACHE_SCHEMA,
                "entries": dict(sorted(self._disk.items())),
            }
        tmp = f"{self.path}.tmp.{os.getpid()}"
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    # lookup machinery
    # ------------------------------------------------------------------

    def _count(self, event: str, amount: int = 1) -> None:
        with self._lock:
            self.stats[event] += amount
            registry = self._registry
        if registry is not None:
            self._publish_event(registry, event, amount)

    @staticmethod
    def _publish_event(registry, event: str, amount: int) -> None:
        if event in ("memory_hits", "disk_hits"):
            registry.counter(
                "plancache_hits_total",
                "frame-plan cache hits by layer",
                labelnames=("level",),
            ).labels(level=event.split("_")[0]).inc(amount)
        elif event == "misses":
            registry.counter(
                "plancache_misses_total", "frame plans solved from scratch"
            ).inc(amount)
        else:
            registry.counter(
                "plancache_errors_total",
                "corrupt/stale plan-cache files and entries",
                labelnames=("kind",),
            ).labels(kind=event).inc(amount)

    def bind_metrics(self, registry) -> None:
        """Publish counters into an obs registry, live from now on.

        Current totals are back-filled at bind time so the registry
        reflects the cache's whole life, not just post-bind traffic.
        """
        with self._lock:
            self._registry = registry
            snapshot = dict(self.stats)
        for event, total in snapshot.items():
            if total:
                self._publish_event(registry, event, total)

    def _remember(self, key: str, frame: int) -> None:
        with self._lock:
            self._memory[key] = frame
            self._memory.move_to_end(key)
            while len(self._memory) > self._max_entries:
                self._memory.popitem(last=False)

    def _lookup(self, key: str, solve) -> int:
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                frame = self._memory[key]
                hit = "memory_hits"
            elif key in self._disk:
                frame = self._disk[key]
                hit = "disk_hits"
            else:
                frame = None
                hit = None
        if frame is not None:
            self._count(hit)
            if hit == "disk_hits":
                self._remember(key, frame)
            return frame
        frame = int(solve())
        self._count("misses")
        self._remember(key, frame)
        if self.path is not None:
            with self._lock:
                self._disk[key] = frame
            if self.autosave:
                self.save()
        return frame

    # ------------------------------------------------------------------
    # public plan lookups
    # ------------------------------------------------------------------

    def trp_frame_size(
        self, n: int, m: int, alpha: float, exact_occupancy: bool = False
    ) -> int:
        """Eq. 2 optimal frame size, cached."""
        from . import analysis

        return self._lookup(
            _trp_key(n, m, alpha, exact_occupancy),
            lambda: analysis._solve_trp_frame_size(n, m, alpha, exact_occupancy),
        )

    def utrp_frame_size(
        self,
        n: int,
        m: int,
        alpha: float,
        c: int,
        slack: int = DEFAULT_SLACK_SLOTS,
    ) -> int:
        """Eq. 3 (+ slack) optimal frame size, cached."""
        from . import utrp_analysis

        return self._lookup(
            _utrp_key(n, m, alpha, c, slack),
            lambda: utrp_analysis._solve_utrp_frame_size(n, m, alpha, c, slack),
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def clear_memory(self) -> None:
        """Drop the LRU layer (the disk layer, if any, stays warm)."""
        with self._lock:
            self._memory.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)


_default_lock = threading.Lock()
_default: PlanCache = PlanCache()


def default_cache() -> PlanCache:
    """The process-wide cache behind the public sizing functions."""
    with _default_lock:
        return _default


def configure_default_cache(
    path: Optional[str] = None,
    max_entries: int = DEFAULT_MAX_ENTRIES,
    autosave: bool = True,
) -> PlanCache:
    """Replace the process-wide default cache (e.g. CLI ``--plan-cache``).

    Returns:
        The newly installed cache.
    """
    global _default
    cache = PlanCache(path=path, max_entries=max_entries, autosave=autosave)
    with _default_lock:
        _default = cache
    return cache
