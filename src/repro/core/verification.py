"""Verification verdicts: comparing predicted and returned bitstrings.

The server's decision rule is exact equality (Sec. 4.1: "a match will
indicate that the set is intact"). :class:`VerificationResult` keeps
the evidence — which slots disagreed — because examples and the
adversary analyses want to show *where* a theft surfaced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..rfid.bitstring import differing_slots

__all__ = ["Verdict", "VerificationResult", "compare_bitstrings"]


class Verdict(enum.Enum):
    """The server's conclusion about one scan."""

    INTACT = "intact"              # bitstring matched the prediction
    NOT_INTACT = "not-intact"      # mismatch: more than m tags missing
    REJECTED_LATE = "rejected-late"  # UTRP: proof arrived after the timer
    REJECTED_MALFORMED = "rejected-malformed"  # wrong length / garbage

    @property
    def alarm(self) -> bool:
        """True when the server raises a warning to the operator."""
        return self is not Verdict.INTACT


@dataclass
class VerificationResult:
    """One scan's verdict plus its evidence.

    Attributes:
        verdict: the server's conclusion.
        mismatched_slots: global slot indices where observation and
            prediction disagreed (empty unless NOT_INTACT).
        frame_size: ``f`` used for the scan.
        elapsed: reader's response latency as measured by the server
            (only meaningful for UTRP, where the timer applies).
    """

    verdict: Verdict
    mismatched_slots: List[int] = field(default_factory=list)
    frame_size: int = 0
    elapsed: float = 0.0

    @property
    def intact(self) -> bool:
        return self.verdict is Verdict.INTACT


def compare_bitstrings(
    expected: np.ndarray, observed: np.ndarray, frame_size: int, elapsed: float = 0.0
) -> VerificationResult:
    """Apply the server's decision rule to one returned bitstring."""
    if observed.shape != expected.shape:
        return VerificationResult(
            Verdict.REJECTED_MALFORMED, [], frame_size, elapsed
        )
    diff = differing_slots(expected, observed)
    if diff:
        return VerificationResult(Verdict.NOT_INTACT, diff, frame_size, elapsed)
    return VerificationResult(Verdict.INTACT, [], frame_size, elapsed)
