"""Verification verdicts: comparing predicted and returned bitstrings.

The server's decision rule is exact equality (Sec. 4.1: "a match will
indicate that the set is intact"). :class:`VerificationResult` keeps
the evidence — which slots disagreed — because examples and the
adversary analyses want to show *where* a theft surfaced.

Two graceful-degradation extensions live alongside the paper's rule:

* **partial-frame salvage** — a reader that crashes mid-frame returns
  only a prefix of the bitstring. Instead of rejecting the round as
  malformed, :func:`salvage_partial_scan` verifies the polled prefix
  and reports the confidence it *actually* achieved, computed with the
  Eq. 2 machinery restricted to the prefix
  (:func:`repro.core.analysis.partial_detection_probability`);
* **k-of-r alarm confirmation** — real channels produce bursty reply
  loss, and every lost reply of an intact set looks exactly like a
  missing tag. :class:`AlarmConfirmation` pages the operator only when
  k of the last r rounds alarmed, and the companion probability
  helpers compute (not guess) what that vote does to the false-alarm
  and detection rates.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np
from scipy import stats

from ..rfid.bitstring import differing_slots

__all__ = [
    "Verdict",
    "VerificationResult",
    "compare_bitstrings",
    "salvage_partial_scan",
    "channel_false_alarm_probability",
    "vote_false_alarm_probability",
    "vote_detection_probability",
    "AlarmConfirmation",
]


class Verdict(enum.Enum):
    """The server's conclusion about one scan."""

    INTACT = "intact"              # bitstring matched the prediction
    NOT_INTACT = "not-intact"      # mismatch: more than m tags missing
    REJECTED_LATE = "rejected-late"  # UTRP: proof arrived after the timer
    REJECTED_MALFORMED = "rejected-malformed"  # wrong length / garbage

    @property
    def alarm(self) -> bool:
        """True when the server raises a warning to the operator."""
        return self is not Verdict.INTACT


@dataclass
class VerificationResult:
    """One scan's verdict plus its evidence.

    Attributes:
        verdict: the server's conclusion.
        mismatched_slots: global slot indices where observation and
            prediction disagreed (empty unless NOT_INTACT).
        frame_size: ``f`` used for the scan.
        elapsed: reader's response latency as measured by the server
            (only meaningful for UTRP, where the timer applies).
        polled_slots: slots actually observed. Equals ``frame_size``
            for a full scan; smaller for a salvaged partial frame.
        achieved_confidence: detection probability the scan actually
            delivered at the critical theft size — ``None`` for full
            scans (they achieve the planned confidence by
            construction), filled in by :func:`salvage_partial_scan`.
    """

    verdict: Verdict
    mismatched_slots: List[int] = field(default_factory=list)
    frame_size: int = 0
    elapsed: float = 0.0
    polled_slots: int = 0
    achieved_confidence: Optional[float] = None

    def __post_init__(self) -> None:
        if self.polled_slots == 0:
            self.polled_slots = self.frame_size

    @property
    def intact(self) -> bool:
        return self.verdict is Verdict.INTACT

    @property
    def salvaged(self) -> bool:
        """True when the verdict rests on a partial frame."""
        return 0 < self.polled_slots < self.frame_size


def compare_bitstrings(
    expected: np.ndarray, observed: np.ndarray, frame_size: int, elapsed: float = 0.0
) -> VerificationResult:
    """Apply the server's decision rule to one returned bitstring."""
    if observed.shape != expected.shape:
        return VerificationResult(
            Verdict.REJECTED_MALFORMED, [], frame_size, elapsed
        )
    diff = differing_slots(expected, observed)
    if diff:
        return VerificationResult(Verdict.NOT_INTACT, diff, frame_size, elapsed)
    return VerificationResult(Verdict.INTACT, [], frame_size, elapsed)


def salvage_partial_scan(
    expected: np.ndarray,
    observed_prefix: np.ndarray,
    frame_size: int,
    population: int,
    critical_missing: int,
    elapsed: float = 0.0,
) -> VerificationResult:
    """Verify the polled prefix of a crashed scan at its real confidence.

    A reader crash mid-frame (power loss, firmware fault, operator
    yanking the cable) returns ``observed_prefix`` covering slots
    ``0..len(prefix)-1`` of the planned ``frame_size``-slot frame. The
    paper's rule would reject the round as malformed and discard the
    evidence; salvage compares the prefix against the matching slice of
    the prediction and reports the detection probability the prefix
    actually bought via
    :func:`~repro.core.analysis.partial_detection_probability`.

    Args:
        expected: the full predicted bitstring (length ``frame_size``).
        observed_prefix: the slots the reader managed to poll.
        frame_size: the planned ``f``.
        population: registered ``n`` (for the confidence computation).
        critical_missing: the theft size the confidence is quoted at
            (``m + 1`` is the planning convention).
        elapsed: reader latency, passed through to the result.

    Raises:
        ValueError: if the prefix is longer than the frame.
    """
    from .analysis import partial_detection_probability

    polled = int(np.asarray(observed_prefix).size)
    if polled > frame_size:
        raise ValueError(
            f"prefix of {polled} slots exceeds frame size {frame_size}"
        )
    confidence = partial_detection_probability(
        population, critical_missing, frame_size, polled
    )
    diff = differing_slots(
        np.asarray(expected)[:polled], np.asarray(observed_prefix)
    )
    verdict = Verdict.NOT_INTACT if diff else Verdict.INTACT
    return VerificationResult(
        verdict,
        diff,
        frame_size,
        elapsed,
        polled_slots=polled,
        achieved_confidence=confidence,
    )


# ----------------------------------------------------------------------
# k-of-r alarm-confirmation voting
# ----------------------------------------------------------------------


def channel_false_alarm_probability(n: int, f: int, loss_rate: float) -> float:
    """Per-round probability reply loss alone flips >= 1 expected slot.

    Under Poisson occupancy (rate ``n/f`` tags per slot) an
    expected-occupied slot reads empty iff *every* reply it would carry
    is lost — probability ``loss_rate^k`` for a ``k``-tag slot. The
    expected number of flipped slots is therefore::

        mu = f * (e^{-lambda (1 - eps)} - e^{-lambda}),   lambda = n/f

    and with slot flips approximately independent the round false-alarms
    (under the paper's strict any-mismatch rule) with probability
    ``1 - e^{-mu}``. This is the per-round ``q`` the voting math
    composes; for a bursty channel use the *marginal* loss rate.

    Raises:
        ValueError: on an invalid population, frame or rate.
    """
    if n < 0:
        raise ValueError("population must be >= 0")
    if f < 1:
        raise ValueError(f"frame size must be >= 1, got {f}")
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError(f"loss_rate must be within [0, 1], got {loss_rate}")
    if n == 0 or loss_rate == 0.0:
        return 0.0
    lam = n / f
    mu = f * (math.exp(-lam * (1.0 - loss_rate)) - math.exp(-lam))
    return float(1.0 - math.exp(-mu))


def _validate_vote(k: int, r: int) -> None:
    if r < 1:
        raise ValueError(f"vote window r must be >= 1, got {r}")
    if not 1 <= k <= r:
        raise ValueError(f"vote quorum k must be in [1, r]; got k={k}, r={r}")


def vote_false_alarm_probability(per_round: float, k: int, r: int) -> float:
    """P(>= k of r independent rounds false-alarm) — the vote's q.

    ``per_round`` is the single-round channel-induced false-alarm
    probability (e.g. from :func:`channel_false_alarm_probability`).
    Rounds use independent seeds and, in simulation, independent
    channel states, so the vote outcome is Binomial: the suppression
    factor the fleet buys is ``per_round / this``.

    Raises:
        ValueError: on an out-of-range probability or quorum.
    """
    if not 0.0 <= per_round <= 1.0:
        raise ValueError(f"per_round must be within [0, 1], got {per_round}")
    _validate_vote(k, r)
    return float(stats.binom.sf(k - 1, r, per_round))


def vote_detection_probability(per_round: float, k: int, r: int) -> float:
    """P(a sustained theft is confirmed within the r-round window).

    The flip side of :func:`vote_false_alarm_probability`: with the
    theft present throughout the window each round alarms independently
    with probability ``per_round`` (at least ``g(n, m+1, f)``, Theorem
    1 — reply loss only *adds* mismatches), so confirmation is again a
    Binomial tail. Planners check this stays above the deployment's
    ``alpha`` before enabling a vote.

    Raises:
        ValueError: on an out-of-range probability or quorum.
    """
    if not 0.0 <= per_round <= 1.0:
        raise ValueError(f"per_round must be within [0, 1], got {per_round}")
    _validate_vote(k, r)
    return float(stats.binom.sf(k - 1, r, per_round))


@dataclass
class AlarmConfirmation:
    """Stateful k-of-r vote over one group's recent round outcomes.

    Feed every round's raw alarm bit through :meth:`observe`; the
    return value says whether the operator should actually be paged
    *this* round. A page fires exactly on the round that completes the
    quorum (k alarming rounds among the last r), so a sustained theft
    pages once promptly while an isolated burst-loss round is absorbed.

    Attributes:
        quorum: ``k`` — alarming rounds required within the window.
        window: ``r`` — rounds the vote looks back over.
        suppressed: raw alarms the vote has absorbed so far.
    """

    quorum: int = 2
    window: int = 3
    suppressed: int = 0
    _history: Deque[bool] = field(default_factory=deque, repr=False)
    _paged: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        _validate_vote(self.quorum, self.window)

    @property
    def votes(self) -> int:
        """Alarming rounds currently inside the window."""
        return sum(self._history)

    def observe(self, alarmed: bool) -> bool:
        """Record one round's raw alarm bit; True when the vote pages.

        The vote re-arms once the quorum lapses (alarming rounds age
        out of the window or an intact streak clears them), so distinct
        incidents page distinctly.
        """
        self._history.append(bool(alarmed))
        if len(self._history) > self.window:
            self._history.popleft()
        confirmed = self.votes >= self.quorum
        if confirmed and not self._paged:
            self._paged = True
            return True
        if not confirmed:
            self._paged = False
        if alarmed:
            self.suppressed += 1
        return False

    def reset(self) -> None:
        """Clear the window (e.g. after maintenance on the group)."""
        self._history.clear()
        self._paged = False
