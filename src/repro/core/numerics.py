"""Shared numerical helpers for the analysis modules.

Both Eq. 2 (TRP sizing, :mod:`repro.core.analysis`) and Eq. 3 (UTRP
sizing, :mod:`repro.core.utrp_analysis`) evaluate binomial expectations
over a truncated support window; the truncation logic lives here so the
two analyses cannot drift apart.
"""

from __future__ import annotations

from typing import Tuple

from scipy import stats

__all__ = ["binom_mass_window"]


def binom_mass_window(count: int, p: float, tail_eps: float) -> Tuple[int, int]:
    """Index window of Binomial(``count``, ``p``) holding all but
    ``tail_eps`` probability mass.

    The window is symmetric in mass: at most ``tail_eps / 2`` is dropped
    from each tail, so every term outside ``[lo, hi]`` contributes less
    than ``tail_eps`` to any expectation of a ``[0, 1]``-bounded
    function.

    Args:
        count: number of Bernoulli draws (``f`` slots, ``n`` tags, ...).
        p: per-draw success probability.
        tail_eps: total probability mass allowed outside the window.

    Returns:
        Inclusive ``(lo, hi)`` indices, clipped to ``[0, count]``.

    Raises:
        ValueError: if ``count`` is negative or ``tail_eps`` is outside
            ``(0, 1)``.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not 0.0 < tail_eps < 1.0:
        raise ValueError(f"tail_eps must be in (0, 1), got {tail_eps}")
    if p <= 0.0:
        return 0, 0
    if p >= 1.0:
        return count, count
    lo = int(stats.binom.ppf(tail_eps / 2, count, p))
    hi = int(stats.binom.ppf(1 - tail_eps / 2, count, p))
    return max(lo, 0), min(hi, count)
