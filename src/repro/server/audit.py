"""Append-only audit log of monitoring activity.

When a theft is detected the evidence chain matters: which challenges
were issued, what came back, who was paged. :class:`AuditLog` records
structured events (in memory and optionally as JSON lines on disk) in
issue order; the log is append-only by construction and each entry is
chained to the previous one with a running hash so post-hoc editing of
an on-disk log is detectable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["AuditEntry", "AuditLog"]

_GENESIS = "0" * 64


@dataclass(frozen=True)
class AuditEntry:
    """One audit record.

    Attributes:
        index: position in the log (0-based).
        kind: event type ("challenge-issued", "verdict", "alert", ...).
        payload: event data (JSON-safe).
        prev_digest: hex digest of the previous entry.
        digest: hex digest of this entry (chains the log).
    """

    index: int
    kind: str
    payload: Dict[str, Any]
    prev_digest: str
    digest: str


def _digest(index: int, kind: str, payload: Dict[str, Any], prev: str) -> str:
    body = json.dumps(
        {"index": index, "kind": kind, "payload": payload, "prev": prev},
        sort_keys=True,
    )
    return hashlib.sha256(body.encode()).hexdigest()


class AuditLog:
    """Hash-chained, append-only event log."""

    def __init__(self, path: Optional[str] = None):
        """Args:
            path: optional JSON-lines file to append every entry to.
        """
        self._entries: List[AuditEntry] = []
        self._path = path

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[AuditEntry]:
        return list(self._entries)

    @property
    def head_digest(self) -> str:
        return self._entries[-1].digest if self._entries else _GENESIS

    def record(self, kind: str, **payload: Any) -> AuditEntry:
        """Append one event.

        Raises:
            TypeError: if the payload is not JSON-serialisable.
        """
        index = len(self._entries)
        prev = self.head_digest
        digest = _digest(index, kind, payload, prev)
        entry = AuditEntry(
            index=index,
            kind=kind,
            payload=dict(payload),
            prev_digest=prev,
            digest=digest,
        )
        self._entries.append(entry)
        if self._path is not None:
            with open(self._path, "a") as fh:
                fh.write(
                    json.dumps(
                        {
                            "index": entry.index,
                            "kind": entry.kind,
                            "payload": entry.payload,
                            "prev": entry.prev_digest,
                            "digest": entry.digest,
                        }
                    )
                    + "\n"
                )
        return entry

    def verify_chain(self) -> bool:
        """Re-derive every digest; False means the log was tampered."""
        prev = _GENESIS
        for i, entry in enumerate(self._entries):
            if entry.index != i or entry.prev_digest != prev:
                return False
            if _digest(i, entry.kind, entry.payload, prev) != entry.digest:
                return False
            prev = entry.digest
        return True

    @classmethod
    def load(cls, path: str) -> "AuditLog":
        """Rebuild a log from its JSON-lines file.

        Raises:
            ValueError: on malformed lines or a broken hash chain.
        """
        log = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                doc = json.loads(line)
                entry = AuditEntry(
                    index=int(doc["index"]),
                    kind=str(doc["kind"]),
                    payload=dict(doc["payload"]),
                    prev_digest=str(doc["prev"]),
                    digest=str(doc["digest"]),
                )
                log._entries.append(entry)
        if not log.verify_chain():
            raise ValueError(f"audit log {path} failed chain verification")
        return log

    def of_kind(self, kind: str) -> List[AuditEntry]:
        return [e for e in self._entries if e.kind == kind]
