"""Server-side substrate: ID database, seed issuance, bitstring prediction.

These modules know every registered ID and can predict what an intact
set must answer; they deliberately do not import :mod:`repro.core`
(protocol orchestration and frame-size planning sit above them, in
:mod:`repro.core.monitor`).
"""

from .audit import AuditEntry, AuditLog
from .database import TagDatabase, TagRecord
from .provisioning import BookVerifier, ChallengeBook
from .seeds import SeedIssuer, TrpChallenge, UtrpChallenge
from .state import export_state, import_state, load_state, save_state
from .verifier import UtrpPrediction, expected_trp_bitstring, expected_utrp_bitstring

__all__ = [
    "AuditEntry",
    "AuditLog",
    "BookVerifier",
    "ChallengeBook",
    "TagDatabase",
    "TagRecord",
    "SeedIssuer",
    "TrpChallenge",
    "UtrpChallenge",
    "UtrpPrediction",
    "expected_trp_bitstring",
    "expected_utrp_bitstring",
    "export_state",
    "import_state",
    "load_state",
    "save_state",
]
