"""Challenge pre-provisioning for intermittently-connected readers.

Sec. 4.2: "The server can either communicate a new (f, r) each time the
reader executes TRP, or the server can issue a list of different (f, r)
pairs to the reader ahead of time." This module implements the second
mode with the bookkeeping that makes it safe:

* the server keeps the authoritative copy of the issued list and the
  index of the next challenge it will accept;
* the reader consumes challenges strictly in order; the server rejects
  an out-of-order or reused index, so a stolen challenge book cannot be
  replayed against earlier positions;
* books are finite — exhaustion is an explicit state the operator sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .seeds import SeedIssuer, TrpChallenge

__all__ = ["ChallengeBook", "BookVerifier"]


class ChallengeBook:
    """The reader-side list of pre-issued TRP challenges."""

    def __init__(self, challenges: List[TrpChallenge]):
        if not challenges:
            raise ValueError("a challenge book needs at least one entry")
        self._challenges = list(challenges)
        self._next = 0

    @property
    def remaining(self) -> int:
        return len(self._challenges) - self._next

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0

    def next_challenge(self) -> TrpChallenge:
        """Consume the next challenge in order.

        Raises:
            IndexError: when the book is exhausted (the reader must
                fetch a fresh book from the server).
        """
        if self.exhausted:
            raise IndexError("challenge book exhausted")
        challenge = self._challenges[self._next]
        self._next += 1
        return challenge

    def peek_index(self) -> int:
        """Index of the next unused challenge (for audit logs)."""
        return self._next


@dataclass
class BookVerifier:
    """Server-side mirror of an issued challenge book.

    Tracks which index the server expects next; scans must come back in
    issue order, each index at most once.
    """

    challenges: List[TrpChallenge]
    _expected: int = 0

    @classmethod
    def issue(
        cls, issuer: SeedIssuer, frame_size: int, count: int
    ) -> "tuple[ChallengeBook, BookVerifier]":
        """Issue a book of ``count`` challenges and its server mirror.

        Raises:
            ValueError: on a non-positive count or frame size.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        challenges = issuer.trp_challenge_batch(frame_size, count)
        return ChallengeBook(challenges), cls(challenges=list(challenges))

    def accept(self, index: int) -> TrpChallenge:
        """Validate that ``index`` is the next acceptable scan.

        Returns the challenge the server must verify against.

        Raises:
            ValueError: on an out-of-order, reused or unknown index.
        """
        if index != self._expected:
            raise ValueError(
                f"scan used challenge index {index}; server expects "
                f"{self._expected} (out-of-order or replayed)"
            )
        if index >= len(self.challenges):
            raise ValueError("index beyond the issued book")
        self._expected += 1
        return self.challenges[index]

    @property
    def remaining(self) -> int:
        return len(self.challenges) - self._expected
