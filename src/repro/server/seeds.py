"""Server-side seed issuance.

Replay resistance for TRP rests entirely on the server never reusing a
``(f, r)`` pair (Sec. 5.1: "this attack can be easily defeated by
letting the server issue a new (f, r) each time"); UTRP additionally
pre-commits a whole ordered list ``r_1..r_f`` per scan (Alg. 5 line 1).
:class:`SeedIssuer` centralises both, guarantees non-reuse, and keeps
an audit trail so tests can assert the guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

__all__ = ["TrpChallenge", "UtrpChallenge", "SeedIssuer"]


@dataclass(frozen=True)
class TrpChallenge:
    """One TRP scan instruction: broadcast ``(f, r)`` once."""

    frame_size: int
    seed: int


@dataclass(frozen=True)
class UtrpChallenge:
    """One UTRP scan instruction.

    Attributes:
        frame_size: ``f``.
        seeds: the ordered list ``r_1..r_f``; the reader must consume
            them strictly in order, one per re-seed.
        timer: wall-clock budget the reader must answer within; the
            server rejects late proofs (Alg. 5 line 5).
    """

    frame_size: int
    seeds: Tuple[int, ...]
    timer: float


class SeedIssuer:
    """Issues fresh random numbers, never repeating one.

    Seeds are drawn from a caller-supplied generator so experiment runs
    are reproducible; uniqueness is enforced against everything issued
    over this issuer's lifetime.
    """

    _SEED_SPACE = 1 << 62

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng if rng is not None else np.random.default_rng()
        self._issued: Set[int] = set()

    @property
    def issued_count(self) -> int:
        return len(self._issued)

    def _fresh(self, count: int) -> List[int]:
        out: List[int] = []
        while len(out) < count:
            draw = self._rng.integers(0, self._SEED_SPACE, size=count - len(out))
            for value in draw.tolist():
                if value not in self._issued:
                    self._issued.add(value)
                    out.append(int(value))
                if len(out) == count:
                    break
        return out

    def trp_challenge(self, frame_size: int) -> TrpChallenge:
        """Issue a fresh TRP ``(f, r)``.

        Raises:
            ValueError: if ``frame_size`` is not positive.
        """
        if frame_size <= 0:
            raise ValueError(f"frame_size must be positive, got {frame_size}")
        return TrpChallenge(frame_size=frame_size, seed=self._fresh(1)[0])

    def trp_challenge_batch(self, frame_size: int, count: int) -> List[TrpChallenge]:
        """Pre-issue a list of challenges (Sec. 4.2: the server "can
        issue a list of different (f, r) pairs ahead of time").

        Raises:
            ValueError: if ``frame_size`` is not positive or ``count``
                is negative.
        """
        if frame_size <= 0:
            raise ValueError(f"frame_size must be positive, got {frame_size}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [TrpChallenge(frame_size, s) for s in self._fresh(count)]

    def utrp_challenge(self, frame_size: int, timer: float) -> UtrpChallenge:
        """Issue a UTRP challenge with ``f`` pre-committed seeds.

        Raises:
            ValueError: if ``frame_size`` is not positive or the timer
                is not a positive finite number (an ``inf`` timer would
                disarm Alg. 5's deadline entirely; ``nan`` compares
                false against every elapsed time, accepting arbitrarily
                late proofs).
        """
        if frame_size <= 0:
            raise ValueError(f"frame_size must be positive, got {frame_size}")
        if not math.isfinite(timer):
            raise ValueError(f"timer must be finite, got {timer}")
        if timer <= 0:
            raise ValueError(f"timer must be positive, got {timer}")
        return UtrpChallenge(
            frame_size=frame_size,
            seeds=tuple(self._fresh(frame_size)),
            timer=timer,
        )
