"""The server's ID database.

The secure back-end store of Sec. 1: every tag's ID is recorded when
the set is created, and — for UTRP — the server mirrors each tag's
hardware counter ``ct`` (Sec. 5.2: "the server also knows the value of
each tag's counter since ct only increments when queried by the
reader"). Counter mirroring is what lets the verifier replay the
re-seed cascade exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

__all__ = ["TagRecord", "TagDatabase"]


class TagRecord:
    """Server-side state for one registered tag."""

    __slots__ = ("tag_id", "counter", "label")

    def __init__(self, tag_id: int, counter: int = 0, label: Optional[str] = None):
        self.tag_id = int(tag_id)
        self.counter = int(counter)
        self.label = label

    def __repr__(self) -> str:
        return f"TagRecord(tag_id={self.tag_id:#x}, counter={self.counter})"


class TagDatabase:
    """Registry of one monitored set ``T*``.

    The set is static after registration (Sec. 3) by default: the
    server believing a tag exists while it is physically gone is
    precisely the condition the protocols detect. The population
    lifecycle layer (:mod:`repro.population`) relaxes that through the
    *explicit* :meth:`commission` / :meth:`decommission` mutations —
    deliberate membership changes recorded against an epoch, never a
    silent drift of the mirrored set.
    """

    def __init__(self) -> None:
        self._records: Dict[int, TagRecord] = {}
        self._sealed = False

    def register_set(
        self, tag_ids: Iterable[int], labels: Optional[Iterable[str]] = None
    ) -> None:
        """Record the full set of IDs, once.

        Raises:
            RuntimeError: if a set was already registered.
            ValueError: on duplicate IDs.
        """
        if self._sealed:
            raise RuntimeError("a tag set is already registered; sets are static")
        ids = [int(i) for i in tag_ids]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate tag IDs in registration")
        label_list: List[Optional[str]]
        if labels is None:
            label_list = [None] * len(ids)
        else:
            label_list = list(labels)
            if len(label_list) != len(ids):
                raise ValueError("labels must match tag_ids in length")
        for tag_id, label in zip(ids, label_list):
            self._records[tag_id] = TagRecord(tag_id, 0, label)
        self._sealed = True

    def commission(
        self,
        tag_ids: Iterable[int],
        labels: Optional[Iterable[str]] = None,
        counter: int = 0,
    ) -> None:
        """Add tags to an already-registered set (a membership delta).

        New records append after the existing ones, so :attr:`ids`
        order stays deterministic across replicas that apply the same
        delta sequence. ``counter`` defaults to 0 — a factory-fresh
        UTRP tag's hardware ``ct``.

        Raises:
            RuntimeError: before :meth:`register_set` (the baseline
                set must exist first).
            ValueError: on duplicate or already-present IDs.
        """
        if not self._sealed:
            raise RuntimeError(
                "commission requires a registered baseline set"
            )
        ids = [int(i) for i in tag_ids]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate tag IDs in commission")
        for i in ids:
            if i in self._records:
                raise ValueError(f"tag {i:#x} is already registered")
        label_list: List[Optional[str]]
        if labels is None:
            label_list = [None] * len(ids)
        else:
            label_list = list(labels)
            if len(label_list) != len(ids):
                raise ValueError("labels must match tag_ids in length")
        for tag_id, label in zip(ids, label_list):
            self._records[tag_id] = TagRecord(tag_id, counter, label)

    def decommission(self, tag_ids: Iterable[int]) -> None:
        """Drop tags from the set (a membership delta).

        Raises:
            RuntimeError: before :meth:`register_set`.
            KeyError: for an ID not currently registered.
        """
        if not self._sealed:
            raise RuntimeError(
                "decommission requires a registered baseline set"
            )
        ids = [int(i) for i in tag_ids]
        for i in ids:
            if i not in self._records:
                raise KeyError(f"tag {i:#x} is not registered")
        for i in ids:
            del self._records[i]

    @property
    def size(self) -> int:
        """``n`` — the registered population size."""
        return len(self._records)

    @property
    def ids(self) -> np.ndarray:
        """All registered IDs as a ``uint64`` array (stable order)."""
        return np.fromiter(
            self._records.keys(), dtype=np.uint64, count=len(self._records)
        )

    @property
    def counters(self) -> np.ndarray:
        """Mirrored counters, aligned with :attr:`ids`."""
        return np.fromiter(
            (r.counter for r in self._records.values()),
            dtype=np.int64,
            count=len(self._records),
        )

    def record(self, tag_id: int) -> TagRecord:
        """Look up one tag.

        Raises:
            KeyError: if the ID was never registered.
        """
        return self._records[int(tag_id)]

    def bump_counters(self, times: int = 1) -> None:
        """Mirror ``times`` seed broadcasts: every tag's ``ct`` += times.

        Every registered tag hears every broadcast (silent tags
        included), so the increment is uniform across the set.

        Raises:
            ValueError: if ``times`` is negative.
        """
        if times < 0:
            raise ValueError("times must be >= 0")
        for rec in self._records.values():
            rec.counter += times

    def set_counters(self, values: np.ndarray) -> None:
        """Overwrite mirrored counters (aligned with :attr:`ids`).

        Used by the UTRP verifier after replaying a scan's cascade.

        Raises:
            ValueError: on length mismatch.
        """
        vals = np.asarray(values)
        if vals.shape != (len(self._records),):
            raise ValueError("counter vector length mismatch")
        for rec, v in zip(self._records.values(), vals):
            rec.counter = int(v)
