"""Expected-bitstring prediction — the server's half of verification.

TRP (Sec. 4.1): knowing every ID and the issued ``(f, r)``, the server
computes the bitstring an intact set *would* return and compares.

UTRP (Sec. 5.3): the server additionally replays the whole re-seed
cascade — which slot fires first, which tags fall silent, what frame
size and seed the honest reader would broadcast next, and how every
tag's counter advances (all tags hear all broadcasts). The replay is
vectorised: each cascade step only needs the minimum chosen slot among
still-active tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..rfid.bitstring import empty_bitstring
from ..rfid.hashing import slots_for_tags, slots_for_tags_with_counters

__all__ = [
    "UtrpPrediction",
    "expected_trp_bitstring",
    "expected_trp_bitstring_with_counters",
    "expected_utrp_bitstring",
]


def expected_trp_bitstring(
    tag_ids: np.ndarray, frame_size: int, seed: int
) -> np.ndarray:
    """Bitstring an intact set produces under TRP's single seed.

    Raises:
        ValueError: if ``frame_size`` is not positive.
    """
    bs = empty_bitstring(frame_size)
    ids = np.asarray(tag_ids, dtype=np.uint64)
    if ids.size:
        slots = slots_for_tags(ids, seed, frame_size)
        bs[np.unique(slots)] = 1
    return bs


def expected_trp_bitstring_with_counters(
    tag_ids: np.ndarray, counters: np.ndarray, frame_size: int, seed: int
):
    """TRP prediction for *counter-capable* tags.

    UTRP-grade tags tick their counter on every ``(f, r)`` they hear —
    including a plain TRP broadcast — and fold the new value into their
    slot hash. A server monitoring such a set with TRP must therefore
    predict with ``ct + 1`` and commit the bump, or the very next UTRP
    round would desynchronise.

    Returns:
        ``(bitstring, new_counters)`` — the expected occupancy and the
        post-scan counter vector to commit.

    Raises:
        ValueError: on shape mismatch or non-positive frame size.
    """
    ids = np.asarray(tag_ids, dtype=np.uint64)
    cts = np.asarray(counters, dtype=np.int64) + 1
    if ids.shape != cts.shape:
        raise ValueError("tag_ids and counters must have the same length")
    bs = empty_bitstring(frame_size)
    if ids.size:
        slots = slots_for_tags_with_counters(ids, seed, frame_size, cts)
        bs[np.unique(slots)] = 1
    return bs, cts


@dataclass
class UtrpPrediction:
    """Result of replaying a UTRP cascade over the server's records.

    Attributes:
        bitstring: expected occupancy over the ``f`` global slots.
        counters: every tag's counter after the scan (aligned with the
            input ID order) — the server commits these back to its
            database once the scan verifies.
        seeds_used: how many of the pre-committed seeds the honest
            cascade consumes.
    """

    bitstring: np.ndarray
    counters: np.ndarray
    seeds_used: int


def expected_utrp_bitstring(
    tag_ids: np.ndarray,
    counters: np.ndarray,
    frame_size: int,
    seeds: Sequence[int],
) -> UtrpPrediction:
    """Replay the honest UTRP cascade (Algs. 6-7) over known IDs.

    The cascade invariants mirrored from the tag/reader machines:

    * every broadcast increments *every* tag's counter (silent tags
      still hear it);
    * after an occupied global slot ``sn`` the next sub-frame is
      ``f' = f - (sn + 1)`` and is only broadcast when ``f' > 0``;
    * tags that replied (all tags in the occupied slot, collisions
      included) go permanently silent.

    Raises:
        ValueError: if fewer than ``frame_size`` seeds are supplied or
            shapes are inconsistent.
    """
    ids = np.asarray(tag_ids, dtype=np.uint64)
    cts = np.asarray(counters, dtype=np.int64).copy()
    if ids.shape != cts.shape:
        raise ValueError("tag_ids and counters must have the same length")
    if len(seeds) < frame_size:
        raise ValueError(f"UTRP needs {frame_size} seeds, got {len(seeds)}")

    bs = empty_bitstring(frame_size)
    active = np.ones(ids.shape, dtype=bool)
    _sentinel = np.iinfo(np.int64).max

    def rehash(seed: int, sub_frame: int) -> np.ndarray:
        """Slots of active tags in the current sub-frame; silent tags
        get a sentinel so the masked min below stays branch-free."""
        full = np.full(ids.shape, _sentinel, dtype=np.int64)
        if active.any():
            full[active] = slots_for_tags_with_counters(
                ids[active], seed, sub_frame, cts[active]
            )
        return full

    # Initial broadcast: (f, r_1) reaches every tag, counters tick first
    # (Alg. 7 line 1), then slots are chosen with the new counter.
    cts += 1
    seeds_used = 1
    offset = 0  # global slot index where the current sub-frame starts
    slots = rehash(int(seeds[0]), frame_size)

    while active.any():
        local_first = int(slots[active].min())
        global_slot = offset + local_first
        bs[global_slot] = 1
        repliers = active & (slots == local_first)
        active &= ~repliers
        sub_frame = frame_size - (global_slot + 1)
        if sub_frame <= 0:
            break
        # Honest reader re-seeds after every occupied slot; every tag
        # (replied or not) hears the broadcast and ticks its counter.
        cts += 1
        seeds_used += 1
        offset = global_slot + 1
        slots = rehash(int(seeds[seeds_used - 1]), sub_frame)
    return UtrpPrediction(bs, cts, seeds_used)
