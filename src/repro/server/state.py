"""Server-state persistence.

A monitoring server is a long-lived deployment: the registered IDs,
mirrored counters and seed-issuance history must survive restarts —
losing the counter mirror bricks every UTRP tag until re-provisioning,
and forgetting issued seeds reopens the replay hole. This module
serialises that state to a plain JSON document (no pickle: the state
file crosses trust boundaries in practice).

Version 2 adds an optional ``resync`` block: when a counter-resync
handshake (:func:`repro.core.utrp.run_counter_resync`) ends with
unresolved or ambiguous tags, the partial outcome is part of the
server's operational state — a restarted server must know recovery was
mid-flight rather than re-alarm from scratch. Version 1 documents load
unchanged (the block is simply absent).

Version 3 adds ``population_epoch`` (see :mod:`repro.population`): the
membership-epoch counter a restored deployment resumes at. Version 1
and 2 documents predate churn support and load unchanged with the
epoch defaulting to 0 — exactly the static set they were written
against (read it with :func:`import_population_epoch`).
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from .database import TagDatabase
from .seeds import SeedIssuer

__all__ = [
    "export_state",
    "import_state",
    "import_resync",
    "import_population_epoch",
    "save_state",
    "load_state",
]

_FORMAT = "repro-rfid-server-state"
_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)


def export_state(
    database: TagDatabase,
    issuer: Optional[SeedIssuer] = None,
    resync=None,
    population_epoch: int = 0,
) -> dict:
    """Serialise a database (and optionally issuer history + resync).

    Args:
        database: the ID/counter mirror.
        issuer: include issued-seed history to preserve never-reuse
            across restarts.
        resync: an in-flight :class:`~repro.core.utrp.ResyncReport`
            (or ``None``); persisted only when it left work behind.
        population_epoch: the membership epoch the database reflects
            (0 for a never-churned set).
    """
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "population_epoch": int(population_epoch),
        "tags": [
            {
                "id": int(tag_id),
                "counter": int(counter),
                "label": database.record(int(tag_id)).label,
            }
            for tag_id, counter in zip(
                database.ids.tolist(), database.counters.tolist()
            )
        ],
    }
    if issuer is not None:
        doc["issued_seeds"] = sorted(int(s) for s in issuer._issued)
    if resync is not None and not resync.complete:
        doc["resync"] = {
            "rounds_run": int(resync.rounds_run),
            "frame_size": int(resync.frame_size),
            "recovered": {
                str(tag): int(offset)
                for tag, offset in sorted(resync.recovered.items())
            },
            "unresolved": sorted(int(t) for t in resync.unresolved),
            "ambiguous": sorted(int(t) for t in resync.ambiguous),
        }
    return doc


def import_state(doc: dict) -> "tuple[TagDatabase, SeedIssuer]":
    """Rebuild a database and issuer from :func:`export_state` output.

    The rebuilt issuer draws fresh randomness but remembers every
    previously-issued seed, preserving the never-reuse guarantee across
    restarts.

    Raises:
        ValueError: on an unrecognised or malformed document.
    """
    if doc.get("format") != _FORMAT:
        raise ValueError("not a repro server-state document")
    if doc.get("version") not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported state version {doc.get('version')!r}")
    tags = doc.get("tags")
    if not isinstance(tags, list):
        raise ValueError("malformed state: missing tag list")

    database = TagDatabase()
    database.register_set(
        [t["id"] for t in tags], labels=[t.get("label") for t in tags]
    )
    database.set_counters(np.array([t["counter"] for t in tags], dtype=np.int64))

    issuer = SeedIssuer()
    for seed in doc.get("issued_seeds", []):
        issuer._issued.add(int(seed))
    return database, issuer


def import_resync(doc: dict):
    """The persisted in-flight resync, or ``None``.

    Returns a :class:`~repro.core.utrp.ResyncReport` carrying the
    unresolved/ambiguous tag lists a restarted operator must chase.

    Raises:
        ValueError: on a malformed resync block.
    """
    block = doc.get("resync")
    if block is None:
        return None
    from ..core.utrp import ResyncReport

    try:
        return ResyncReport(
            rounds_run=int(block["rounds_run"]),
            frame_size=int(block["frame_size"]),
            recovered={
                int(tag): int(offset)
                for tag, offset in block.get("recovered", {}).items()
            },
            unresolved=[int(t) for t in block.get("unresolved", [])],
            ambiguous=[int(t) for t in block.get("ambiguous", [])],
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"malformed resync block: {error}") from error


def import_population_epoch(doc: dict) -> int:
    """The persisted membership epoch; 0 for pre-v3 documents.

    Raises:
        ValueError: on a present-but-malformed epoch.
    """
    epoch = doc.get("population_epoch", 0)
    if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
        raise ValueError(
            f"malformed state: population_epoch {epoch!r} must be a "
            "non-negative integer"
        )
    return epoch


def save_state(
    path: str,
    database: TagDatabase,
    issuer: Optional[SeedIssuer] = None,
    resync=None,
    population_epoch: int = 0,
) -> None:
    """Write the state document to ``path`` atomically."""
    doc = export_state(
        database, issuer, resync=resync, population_epoch=population_epoch
    )
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=1)
    import os

    os.replace(tmp, path)


def load_state(path: str) -> "tuple[TagDatabase, SeedIssuer]":
    """Read a state document back.

    Use :func:`import_resync` on the raw document when the deployment
    also tracks in-flight counter recovery.

    Raises:
        ValueError: on malformed content (via :func:`import_state`).
        OSError: if the file cannot be read.
    """
    with open(path) as fh:
        doc = json.load(fh)
    return import_state(doc)
