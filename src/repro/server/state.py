"""Server-state persistence.

A monitoring server is a long-lived deployment: the registered IDs,
mirrored counters and seed-issuance history must survive restarts —
losing the counter mirror bricks every UTRP tag until re-provisioning,
and forgetting issued seeds reopens the replay hole. This module
serialises that state to a plain JSON document (no pickle: the state
file crosses trust boundaries in practice).
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from .database import TagDatabase
from .seeds import SeedIssuer

__all__ = ["export_state", "import_state", "save_state", "load_state"]

_FORMAT = "repro-rfid-server-state"
_VERSION = 1


def export_state(database: TagDatabase, issuer: Optional[SeedIssuer] = None) -> dict:
    """Serialise a database (and optionally an issuer's history)."""
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "tags": [
            {
                "id": int(tag_id),
                "counter": int(counter),
                "label": database.record(int(tag_id)).label,
            }
            for tag_id, counter in zip(
                database.ids.tolist(), database.counters.tolist()
            )
        ],
    }
    if issuer is not None:
        doc["issued_seeds"] = sorted(int(s) for s in issuer._issued)
    return doc


def import_state(doc: dict) -> "tuple[TagDatabase, SeedIssuer]":
    """Rebuild a database and issuer from :func:`export_state` output.

    The rebuilt issuer draws fresh randomness but remembers every
    previously-issued seed, preserving the never-reuse guarantee across
    restarts.

    Raises:
        ValueError: on an unrecognised or malformed document.
    """
    if doc.get("format") != _FORMAT:
        raise ValueError("not a repro server-state document")
    if doc.get("version") != _VERSION:
        raise ValueError(f"unsupported state version {doc.get('version')!r}")
    tags = doc.get("tags")
    if not isinstance(tags, list):
        raise ValueError("malformed state: missing tag list")

    database = TagDatabase()
    database.register_set(
        [t["id"] for t in tags], labels=[t.get("label") for t in tags]
    )
    database.set_counters(np.array([t["counter"] for t in tags], dtype=np.int64))

    issuer = SeedIssuer()
    for seed in doc.get("issued_seeds", []):
        issuer._issued.add(int(seed))
    return database, issuer


def save_state(
    path: str, database: TagDatabase, issuer: Optional[SeedIssuer] = None
) -> None:
    """Write the state document to ``path`` atomically."""
    doc = export_state(database, issuer)
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=1)
    import os

    os.replace(tmp, path)


def load_state(path: str) -> "tuple[TagDatabase, SeedIssuer]":
    """Read a state document back.

    Raises:
        ValueError: on malformed content (via :func:`import_state`).
        OSError: if the file cannot be read.
    """
    with open(path) as fh:
        doc = json.load(fh)
    return import_state(doc)
