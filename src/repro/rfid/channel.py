"""Slotted radio channel between one reader and a tag population.

The channel enforces the physics the protocols are built on:

* a polled slot is **empty** (no reply), a **singleton** (one tag's
  payload decodes) or a **collision** (several tags replied — the reader
  learns *that* the slot was occupied but nothing else);
* tag identities never cross the channel unless a tag explicitly
  transmits its ID (the *collect all* baseline does; TRP/UTRP never do);
* every broadcast and every slot is metered so experiments can convert
  protocol runs into air-time via :mod:`repro.rfid.timing`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .tag import Tag, TagReply

__all__ = [
    "SlotOutcome",
    "SlotObservation",
    "ChannelStats",
    "SlottedChannel",
    "ChannelOutage",
    "FlakyChannel",
]


class SlotOutcome(enum.Enum):
    """What a reader can distinguish about one slot."""

    EMPTY = "empty"
    SINGLE = "single"
    COLLISION = "collision"

    @property
    def occupied(self) -> bool:
        """True if at least one tag replied — the bit TRP/UTRP record."""
        return self is not SlotOutcome.EMPTY


@dataclass
class SlotObservation:
    """Result of polling one slot.

    Attributes:
        outcome: empty / single / collision.
        payload_bits: the decoded random bits when exactly one tag
            replied, else ``None`` (collisions garble payloads).
        decoded_id: the tag ID, only when the protocol put IDs on the
            air (*collect all*) **and** the slot was a singleton.
            TRP/UTRP scans always see ``None`` here — that is the
            privacy property of Sec. 1, contribution (2).
        replies: the underlying replies — simulation-side ground truth.
            Readers must not inspect ``replies[i].tag_id``; honest and
            dishonest reader implementations alike only consume
            ``outcome``, ``payload_bits`` and ``decoded_id``.
    """

    outcome: SlotOutcome
    payload_bits: Optional[int]
    decoded_id: Optional[int] = None
    replies: List[TagReply] = field(default_factory=list)


@dataclass
class ChannelStats:
    """Air-interface counters accumulated over a session.

    ``replies_lost`` counts tag bursts the channel swallowed (benign
    ``miss_rate`` fading and burst-loss faults alike) and ``outages``
    counts whole sessions dropped before the seed broadcast — both
    failure axes are first-class stats so :meth:`merge` never loses
    them when sessions are combined.
    """

    seed_broadcasts: int = 0
    slots_polled: int = 0
    empty_slots: int = 0
    singleton_slots: int = 0
    collision_slots: int = 0
    reply_payload_bits: int = 0
    id_transmissions: int = 0
    replies_lost: int = 0
    outages: int = 0

    def merge(self, other: "ChannelStats") -> "ChannelStats":
        """Combine counters from two sessions (e.g. colluding readers)."""
        return ChannelStats(
            seed_broadcasts=self.seed_broadcasts + other.seed_broadcasts,
            slots_polled=self.slots_polled + other.slots_polled,
            empty_slots=self.empty_slots + other.empty_slots,
            singleton_slots=self.singleton_slots + other.singleton_slots,
            collision_slots=self.collision_slots + other.collision_slots,
            reply_payload_bits=self.reply_payload_bits + other.reply_payload_bits,
            id_transmissions=self.id_transmissions + other.id_transmissions,
            replies_lost=self.replies_lost + other.replies_lost,
            outages=self.outages + other.outages,
        )


class ChannelOutage(RuntimeError):
    """The reader lost its link for the whole session.

    Raised by :class:`FlakyChannel` when a session-level outage strikes
    (reader knocked out of range, interference burst, power brownout).
    Unlike per-reply losses (``miss_rate``), an outage aborts the round
    before any slot is observed, so the server learns *nothing* — the
    correct reaction is to retry the round, which is what the
    :mod:`repro.fleet` resilience layer does.
    """


class SlottedChannel:
    """The shared medium for one reader and the tags in its field.

    The channel owns no protocol logic: it just delivers broadcasts to
    every powered tag and merges simultaneous replies into the three
    observable outcomes.

    An optional ``miss_rate`` models the benign failures the paper's
    introduction motivates tolerance with (scratched tags, items
    blocking each other): each reply is independently lost with that
    probability. The transmitting tag still believes it answered and
    falls silent — which is exactly why lost replies surface as
    mismatches at the server.
    """

    def __init__(
        self,
        tags: Sequence[Tag],
        miss_rate: float = 0.0,
        rng=None,
    ):
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError(f"miss_rate must be within [0, 1], got {miss_rate}")
        if miss_rate > 0.0 and rng is None:
            raise ValueError("a lossy channel needs an rng")
        self._tags = list(tags)
        self._miss_rate = miss_rate
        self._rng = rng
        self.stats = ChannelStats()

    @property
    def tags(self) -> List[Tag]:
        """Tags currently in the reader's field (simulation ground truth)."""
        return self._tags

    def power_cycle(self) -> None:
        """Start a fresh session: every tag re-enters IDLE state."""
        for tag in self._tags:
            tag.power_cycle()

    def broadcast_seed(self, frame_size: int, seed: int) -> None:
        """Deliver a ``(f, r)`` broadcast to every tag in the field."""
        self.stats.seed_broadcasts += 1
        for tag in self._tags:
            tag.receive_seed(frame_size, seed)

    def poll_slot(self, slot: int, ids_on_air: bool = False) -> SlotObservation:
        """Poll one slot and resolve collisions.

        Args:
            slot: the (protocol-local) slot number being polled.
            ids_on_air: True when the running protocol makes tags
                transmit their full IDs (*collect all*). A singleton
                slot then decodes the ID; collided IDs are garbled but
                still cost air time.

        Raises:
            ValueError: if ``slot`` is negative.
        """
        if slot < 0:
            raise ValueError(f"slot must be non-negative, got {slot}")
        self.stats.slots_polled += 1
        replies = [r for r in (tag.poll(slot) for tag in self._tags) if r is not None]
        if self._miss_rate > 0.0 and replies:
            # Fading/blocking: each burst is lost independently. The tag
            # transmitted regardless, so it stays silent afterwards.
            kept = [r for r in replies if self._rng.random() >= self._miss_rate]
            self.stats.replies_lost += len(replies) - len(kept)
            replies = kept
        if ids_on_air:
            self.stats.id_transmissions += len(replies)
        if not replies:
            self.stats.empty_slots += 1
            return SlotObservation(SlotOutcome.EMPTY, None, None, [])
        if len(replies) == 1:
            self.stats.singleton_slots += 1
            decoded = replies[0].tag_id if ids_on_air else None
            if not ids_on_air:
                self.stats.reply_payload_bits += 16
            return SlotObservation(SlotOutcome.SINGLE, replies[0].bits, decoded, replies)
        self.stats.collision_slots += 1
        if ids_on_air:
            # No ACK reaches collided tags, so they re-arm and will
            # retransmit in a later collect-all round.
            colliders = {r.tag_id for r in replies}
            for tag in self._tags:
                if tag.tag_id in colliders:
                    tag.mark_collided()
        return SlotObservation(SlotOutcome.COLLISION, None, None, replies)


class FlakyChannel(SlottedChannel):
    """A channel whose whole *session* can drop, not just single replies.

    ``outage_rate`` is the probability that any given session (the span
    from one seed broadcast to the end of its frame) is unusable. The
    outage surfaces as :class:`ChannelOutage` on the seed broadcast —
    the earliest point a real reader would notice it cannot raise the
    field — leaving the tags untouched, so a retried round starts from
    a clean state.

    Both failure axes compose: a session that survives the outage draw
    still loses individual replies at ``miss_rate``.
    """

    def __init__(
        self,
        tags: Sequence[Tag],
        outage_rate: float = 0.0,
        miss_rate: float = 0.0,
        rng=None,
    ):
        if not 0.0 <= outage_rate <= 1.0:
            raise ValueError(
                f"outage_rate must be within [0, 1], got {outage_rate}"
            )
        if outage_rate > 0.0 and rng is None:
            raise ValueError("an outage-prone channel needs an rng")
        super().__init__(tags, miss_rate=miss_rate, rng=rng)
        self._outage_rate = outage_rate

    @property
    def outages(self) -> int:
        """Sessions dropped so far — an alias of ``stats.outages``.

        Kept as an attribute-style accessor for callers that predate
        outages living inside :class:`ChannelStats`; the stats object
        is the source of truth so ``merge()`` carries outages along.
        """
        return self.stats.outages

    def broadcast_seed(self, frame_size: int, seed: int) -> None:
        """Deliver the ``(f, r)`` broadcast, or lose the whole session.

        Raises:
            ChannelOutage: with probability ``outage_rate`` per call.
        """
        if self._outage_rate > 0.0 and self._rng.random() < self._outage_rate:
            self.stats.outages += 1
            raise ChannelOutage(
                f"session lost before seed broadcast (outage #{self.outages})"
            )
        super().broadcast_seed(frame_size, seed)
