"""Passive-tag state machine.

Implements the tag side of both protocols:

* Alg. 2 (TRP): on ``(f, r)`` compute ``sn = h(id XOR r) mod f``; when the
  reader polls that slot, answer with a few random bits.
* Alg. 7 (UTRP): additionally keep a hardware counter ``ct`` that
  increments on *every* received ``(f, r)`` pair, fold it into the hash,
  and fall silent permanently after replying once.

The model is deliberately minimal — a passive tag has no clock, no
persistent RAM beyond ``ct``, and can talk to only one reader at a time
(Sec. 5.3). Random reply bits are derived deterministically from the
tag's own hash state, standing in for the tag's hardware RNG; nothing in
either protocol depends on their value, only on their presence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .hashing import MASK64, splitmix64, slot_for_tag

__all__ = ["TagState", "TagReply", "Tag"]

_REPLY_SALT = 0xA5A5_5A5A_0F0F_F0F0
#: Number of random bits a tag transmits to claim a slot (Sec. 4.2 —
#: "a much shorter random number" than the ID).
REPLY_BITS = 16


class TagState(enum.Enum):
    """Lifecycle of a tag within one scan session."""

    IDLE = "idle"          # powered but not yet seeded
    SEEDED = "seeded"      # has (f, r), waiting for its slot
    SILENT = "silent"      # replied already; stays quiet until session reset


@dataclass
class TagReply:
    """What a tag puts on the air when its slot is polled.

    Attributes:
        tag_id: identity of the replying tag. The *reader never sees
            this* — it is carried for simulation bookkeeping only; the
            channel hands readers just the random bits (or a collision).
        bits: the short random payload actually transmitted.
    """

    tag_id: int
    bits: int


@dataclass
class Tag:
    """One RFID tag.

    Attributes:
        tag_id: unique 64-bit identifier (never transmitted by TRP/UTRP).
        uses_counter: whether the tag folds its counter into the slot
            hash (True for UTRP tags, False for plain TRP tags).
        counter: the monotone hardware counter ``ct``. Persists across
            sessions — that persistence is exactly what defeats
            rescan-and-replay (Sec. 5.3).
    """

    tag_id: int
    uses_counter: bool = False
    counter: int = 0
    _state: TagState = field(default=TagState.IDLE, repr=False)
    _frame_size: int = field(default=0, repr=False)
    _seed: int = field(default=0, repr=False)
    _slot: int = field(default=-1, repr=False)
    _faded: bool = field(default=False, repr=False)

    @property
    def state(self) -> TagState:
        return self._state

    @property
    def faded(self) -> bool:
        """True while the tag's power has faded out of the field."""
        return self._faded

    @property
    def chosen_slot(self) -> Optional[int]:
        """Slot the tag currently intends to reply in (None if not seeded)."""
        return self._slot if self._state is TagState.SEEDED else None

    def power_cycle(self) -> None:
        """Start a new scan session (tag re-enters the reader field).

        Volatile state clears; the hardware counter does *not* reset.
        A faded tag re-enters the field on the next power-up — power
        fade is a property of the session, not of the silicon.
        """
        self._state = TagState.IDLE
        self._frame_size = 0
        self._seed = 0
        self._slot = -1
        self._faded = False

    def power_fade(self) -> None:
        """The tag drops out of the reader's powered field mid-session.

        A faded tag neither hears broadcasts nor replies for the rest
        of the session — the fault-injection layer uses this to model a
        tag at the edge of the field losing harvest power after slot
        ``k``. Importantly a faded *counter* tag stops ticking ``ct``,
        which is one of the ways a UTRP population desynchronises.
        """
        self._faded = True

    def receive_seed(self, frame_size: int, seed: int) -> None:
        """Handle a broadcast ``(f, r)`` pair (Alg. 2 line 1 / Alg. 7 lines 1, 6-8).

        A UTRP tag increments ``ct`` on every seed it hears, even ones it
        will never act on — the increment happens in hardware on receipt.
        Tags that have already replied stay silent but still hear the
        broadcast, which is why the server can track their counters.

        Raises:
            ValueError: if ``frame_size`` is not positive.
        """
        if frame_size <= 0:
            raise ValueError(f"frame_size must be positive, got {frame_size}")
        if self._faded:
            return
        if self.uses_counter:
            self.counter = (self.counter + 1) & MASK64
        if self._state is TagState.SILENT:
            return
        self._frame_size = frame_size
        self._seed = seed
        counter = self.counter if self.uses_counter else 0
        self._slot = slot_for_tag(self.tag_id, seed, frame_size, counter)
        self._state = TagState.SEEDED

    def poll(self, slot: int) -> Optional[TagReply]:
        """Answer a reader polling ``slot`` (Alg. 2 lines 3-5 / Alg. 7 lines 3-5).

        Returns a :class:`TagReply` if this is the tag's chosen slot,
        otherwise ``None``. After replying the tag keeps silent for the
        rest of the session.
        """
        if self._faded or self._state is not TagState.SEEDED or slot != self._slot:
            return None
        self._state = TagState.SILENT
        return TagReply(tag_id=self.tag_id, bits=self._reply_bits())

    def mark_collided(self) -> None:
        """Re-arm a tag whose reply collided (collect-all retransmission).

        In the *collect all* baseline the reader's missing ACK tells a
        collided tag to retransmit in a later round, so it returns to
        IDLE and will re-seed on the next ``(f, r)``. TRP/UTRP tags are
        never re-armed — they "keep silent" after replying (Alg. 7
        line 5) whether or not they collided.
        """
        self._state = TagState.IDLE
        self._slot = -1

    def _reply_bits(self) -> int:
        """Deterministic stand-in for the tag's hardware RNG burst."""
        counter = self.counter if self.uses_counter else 0
        word = (self.tag_id ^ self._seed ^ counter ^ _REPLY_SALT) & MASK64
        return splitmix64(word) & ((1 << REPLY_BITS) - 1)
