"""Deterministic tag-side hash function ``h(.)``.

The paper's protocols rely on every tag picking its reply slot with a
*deterministic* hash of its ID and a reader-supplied seed::

    sn = h(id XOR r) mod f            (TRP, Sec. 4.1)
    sn = h(id XOR r XOR ct) mod f     (UTRP, Sec. 5.2)

The paper leaves ``h`` unspecified — any hash that maps its input
uniformly over the output range reproduces the analysis (Theorem 1 only
assumes each tag picks a slot uniformly and independently across seeds).
We use the splitmix64 finalizer, a well-studied 64-bit mixer with full
avalanche, which is cheap enough to be a plausible stand-in for the
lightweight hash a passive tag would implement.

Both a scalar path (used by the per-tag state machines) and a vectorised
numpy path (used by the Monte Carlo fast paths) are provided; they are
bit-identical and tested against each other.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MASK64",
    "splitmix64",
    "splitmix64_array",
    "tag_hash",
    "tag_hash_array",
    "slot_for_tag",
    "slots_for_tags",
    "slots_for_tags_with_counters",
]

#: All tag IDs, seeds and counters are treated as 64-bit unsigned words.
MASK64 = (1 << 64) - 1

_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(value: int) -> int:
    """Mix a 64-bit integer through the splitmix64 finalizer.

    This is the core bijective mixer: every output bit depends on every
    input bit (full avalanche), so ``splitmix64(x) mod f`` is uniform
    over ``[0, f)`` for any practical frame size ``f``.

    Args:
        value: arbitrary integer; only the low 64 bits are used.

    Returns:
        A uniformly mixed integer in ``[0, 2**64)``.
    """
    z = (value + _GAMMA) & MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & MASK64
    return (z ^ (z >> 31)) & MASK64


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64` over an array of ``uint64`` words.

    Bit-identical to the scalar path; numpy's wrapping ``uint64``
    arithmetic implements the same modular multiplications.
    """
    z = values.astype(np.uint64, copy=True)
    # In-place ops on the private copy: the mixer runs on every Monte
    # Carlo slot pick, so one scratch buffer instead of a fresh
    # temporary per step is a measurable win at trials x n scale.
    scratch = np.empty_like(z)
    with np.errstate(over="ignore"):
        z += np.uint64(_GAMMA)
        np.right_shift(z, np.uint64(30), out=scratch)
        z ^= scratch
        z *= np.uint64(_MIX1)
        np.right_shift(z, np.uint64(27), out=scratch)
        z ^= scratch
        z *= np.uint64(_MIX2)
        np.right_shift(z, np.uint64(31), out=scratch)
        z ^= scratch
    return z


def tag_hash(tag_id: int, seed: int, counter: int = 0) -> int:
    """``h(id XOR r XOR ct)`` — the hash a tag computes on-chip.

    With ``counter == 0`` this is exactly the TRP hash ``h(id XOR r)``;
    UTRP tags pass their running counter ``ct`` (Alg. 7 line 2).

    Args:
        tag_id: the tag's unique 64-bit ID.
        seed: the reader-broadcast random number ``r``.
        counter: the tag's counter ``ct`` (0 for TRP).

    Returns:
        The mixed 64-bit hash value, before the ``mod f`` reduction.
    """
    return splitmix64((tag_id ^ seed ^ counter) & MASK64)


def tag_hash_array(tag_ids: np.ndarray, seed: int, counter: int = 0) -> np.ndarray:
    """Vectorised :func:`tag_hash` for a whole population at once."""
    ids = np.asarray(tag_ids, dtype=np.uint64)
    word = np.uint64((seed ^ counter) & MASK64)
    return splitmix64_array(ids ^ word)


def slot_for_tag(tag_id: int, seed: int, frame_size: int, counter: int = 0) -> int:
    """Slot number a tag picks: ``h(id XOR r XOR ct) mod f``.

    Slots are numbered ``0 .. frame_size - 1`` internally (the paper uses
    ``1 .. f``; the off-by-one is presentation only and tested to be
    irrelevant to every reported quantity).

    Raises:
        ValueError: if ``frame_size`` is not positive.
    """
    if frame_size <= 0:
        raise ValueError(f"frame_size must be positive, got {frame_size}")
    return tag_hash(tag_id, seed, counter) % frame_size


def slots_for_tags(
    tag_ids: np.ndarray, seed: int, frame_size: int, counter: int = 0
) -> np.ndarray:
    """Vectorised :func:`slot_for_tag` — one slot per tag, dtype ``int64``.

    Raises:
        ValueError: if ``frame_size`` is not positive.
    """
    if frame_size <= 0:
        raise ValueError(f"frame_size must be positive, got {frame_size}")
    hashes = tag_hash_array(tag_ids, seed, counter)
    return (hashes % np.uint64(frame_size)).astype(np.int64)


def slots_for_tags_with_counters(
    tag_ids: np.ndarray, seed: int, frame_size: int, counters: np.ndarray
) -> np.ndarray:
    """Vectorised UTRP slot pick with a *per-tag* counter vector.

    Bit-identical to calling :func:`slot_for_tag` per tag with each
    tag's own ``ct`` — the form the UTRP verifier replays the cascade
    with.

    Raises:
        ValueError: if ``frame_size`` is not positive or lengths differ.
    """
    if frame_size <= 0:
        raise ValueError(f"frame_size must be positive, got {frame_size}")
    ids = np.asarray(tag_ids, dtype=np.uint64)
    cts = np.asarray(counters).astype(np.uint64)
    if ids.shape != cts.shape:
        raise ValueError("tag_ids and counters must have the same length")
    word = ids ^ np.uint64(seed & MASK64) ^ cts
    hashes = splitmix64_array(word)
    return (hashes % np.uint64(frame_size)).astype(np.int64)
