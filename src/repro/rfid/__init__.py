"""RFID substrate: tags, IDs, slotted channel, readers, timing.

This package is the simulated "hardware" layer every protocol in
:mod:`repro.core` and :mod:`repro.aloha` runs on. It knows nothing about
monitoring, thresholds or adversaries — only about tags deterministically
hashing themselves into slots and a reader observing slot outcomes.
"""

from .bitstring import (
    bitstrings_equal,
    bitwise_or,
    differing_slots,
    empty_bitstring,
    format_bitstring,
    from_slots,
)
from .channel import ChannelStats, SlotObservation, SlotOutcome, SlottedChannel
from .hashing import slot_for_tag, slots_for_tags, splitmix64, tag_hash
from .ids import TagId, TagIdGenerator, random_tag_ids, sequential_tag_ids
from .population import TagPopulation
from .reader import ScanResult, TrustedReader
from .tag import Tag, TagReply, TagState
from .timing import GEN2_TYPICAL, UNIT_SLOTS, LinkTiming

__all__ = [
    "bitstrings_equal",
    "bitwise_or",
    "differing_slots",
    "empty_bitstring",
    "format_bitstring",
    "from_slots",
    "ChannelStats",
    "SlotObservation",
    "SlotOutcome",
    "SlottedChannel",
    "slot_for_tag",
    "slots_for_tags",
    "splitmix64",
    "tag_hash",
    "TagId",
    "TagIdGenerator",
    "random_tag_ids",
    "sequential_tag_ids",
    "TagPopulation",
    "ScanResult",
    "TrustedReader",
    "Tag",
    "TagReply",
    "TagState",
    "GEN2_TYPICAL",
    "UNIT_SLOTS",
    "LinkTiming",
]
