"""Tag populations: the monitored set ``T*`` and operations on it.

A population is the *physical* collection of tags present in a reader's
field. The server's view of the set lives in
:mod:`repro.server.database`; the gap between the two (stolen tags) is
what the protocols detect.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .ids import random_tag_ids, sequential_tag_ids
from .tag import Tag

__all__ = ["TagPopulation"]


class TagPopulation:
    """A concrete set of tags, addressable by ID.

    The population is created once and then only ever *loses* tags
    (Sec. 3: the set "once created is assumed to remain static" — no
    additions), matching the paper's adversary who physically removes
    tags.
    """

    def __init__(self, tags: Iterable[Tag]):
        self._tags: List[Tag] = list(tags)
        ids = [t.tag_id for t in self._tags]
        if len(set(ids)) != len(ids):
            raise ValueError("tag IDs in a population must be unique")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        count: int,
        uses_counter: bool = False,
        rng: Optional[np.random.Generator] = None,
        sequential: bool = False,
    ) -> "TagPopulation":
        """Manufacture ``count`` fresh tags.

        Args:
            count: population size ``n``.
            uses_counter: make UTRP-capable tags (hardware counter in
                the slot hash).
            rng: source of randomness for ID assignment.
            sequential: issue consecutive IDs instead of random ones
                (a harder case for hash uniformity; used by tests).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if sequential:
            ids = sequential_tag_ids(count)
        else:
            ids = random_tag_ids(count, rng)
        return cls(Tag(int(i), uses_counter=uses_counter) for i in ids)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tags)

    def __iter__(self):
        return iter(self._tags)

    @property
    def tags(self) -> List[Tag]:
        return list(self._tags)

    @property
    def ids(self) -> np.ndarray:
        """All present tag IDs as a ``uint64`` array."""
        return np.array([t.tag_id for t in self._tags], dtype=np.uint64)

    def get(self, tag_id: int) -> Tag:
        """Fetch a tag by ID.

        Raises:
            KeyError: if the tag is not (or no longer) present.
        """
        for tag in self._tags:
            if tag.tag_id == tag_id:
                return tag
        raise KeyError(f"tag {tag_id:#x} not in population")

    # ------------------------------------------------------------------
    # mutation (theft)
    # ------------------------------------------------------------------

    def remove(self, tag_ids: Sequence[int]) -> "TagPopulation":
        """Physically remove the given tags, returning them as a new
        population (the adversary's loot bag).

        Raises:
            KeyError: if any requested ID is not present.
        """
        wanted = set(int(i) for i in tag_ids)
        taken = [t for t in self._tags if t.tag_id in wanted]
        if len(taken) != len(wanted):
            missing = wanted - {t.tag_id for t in taken}
            raise KeyError(f"tags not present: {sorted(missing)[:5]}")
        self._tags = [t for t in self._tags if t.tag_id not in wanted]
        return TagPopulation(taken)

    def remove_random(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> "TagPopulation":
        """Steal ``count`` uniformly random tags (the paper's theft model).

        Raises:
            ValueError: if ``count`` exceeds the population size.
        """
        if count > len(self._tags):
            raise ValueError(
                f"cannot remove {count} tags from a population of {len(self._tags)}"
            )
        gen = rng if rng is not None else np.random.default_rng()
        chosen = gen.choice(len(self._tags), size=count, replace=False)
        ids = [self._tags[i].tag_id for i in chosen]
        return self.remove(ids)

    def split(
        self, first_size: int
    ) -> Tuple["TagPopulation", "TagPopulation"]:
        """Partition into two populations of sizes ``first_size`` and the
        rest — how colluding readers divide ``T*`` into ``s1`` and ``s2``.

        Raises:
            ValueError: if ``first_size`` is out of range.
        """
        if not 0 <= first_size <= len(self._tags):
            raise ValueError(f"first_size {first_size} out of range")
        ids = [t.tag_id for t in self._tags[:first_size]]
        first = self.remove(ids)
        rest = TagPopulation(self._tags)
        self._tags = []
        return first, rest
