"""Tag identifier generation and formatting.

Real deployments use EPC-96 identifiers (header / manager / object-class /
serial). The protocols only need IDs to be *unique* and hashed as opaque
words, so we model an ID as a 64-bit integer but keep an EPC-flavoured
structured generator so examples read like an inventory system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["TagId", "TagIdGenerator", "random_tag_ids", "sequential_tag_ids"]

_SERIAL_BITS = 36
_ITEM_BITS = 20


@dataclass(frozen=True)
class TagId:
    """A structured tag identifier.

    Attributes:
        value: the 64-bit word the tag actually hashes on air.
        manager: EPC "company prefix" part (who owns the item).
        item_class: EPC "object class" part (what kind of item).
        serial: per-item serial number.
    """

    value: int

    @property
    def manager(self) -> int:
        return (self.value >> (_SERIAL_BITS + _ITEM_BITS)) & 0xFF

    @property
    def item_class(self) -> int:
        return (self.value >> _SERIAL_BITS) & ((1 << _ITEM_BITS) - 1)

    @property
    def serial(self) -> int:
        return self.value & ((1 << _SERIAL_BITS) - 1)

    @classmethod
    def build(cls, manager: int, item_class: int, serial: int) -> "TagId":
        """Compose an ID from its EPC-style fields.

        Raises:
            ValueError: if any field exceeds its bit width.
        """
        if not 0 <= manager < (1 << 8):
            raise ValueError(f"manager must fit in 8 bits, got {manager}")
        if not 0 <= item_class < (1 << _ITEM_BITS):
            raise ValueError(f"item_class must fit in {_ITEM_BITS} bits")
        if not 0 <= serial < (1 << _SERIAL_BITS):
            raise ValueError(f"serial must fit in {_SERIAL_BITS} bits")
        value = (manager << (_SERIAL_BITS + _ITEM_BITS)) | (item_class << _SERIAL_BITS) | serial
        return cls(value)

    def __str__(self) -> str:
        return f"urn:epc:{self.manager:02x}.{self.item_class:05x}.{self.serial:09x}"


class TagIdGenerator:
    """Issues unique tag IDs, either sequential or random.

    Sequential IDs stress the hash (adjacent inputs must still spread
    uniformly over slots); random IDs model real EPC serials. Both are
    exercised by the test suite.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None, manager: int = 0x1F):
        self._rng = rng if rng is not None else np.random.default_rng()
        self._manager = manager
        self._issued: set = set()
        self._next_serial = 0

    def sequential(self, count: int, item_class: int = 1) -> List[TagId]:
        """Issue ``count`` consecutive serials within one item class."""
        out = []
        for _ in range(count):
            tag = TagId.build(self._manager, item_class, self._next_serial)
            self._next_serial += 1
            self._issued.add(tag.value)
            out.append(tag)
        return out

    def random(self, count: int) -> List[TagId]:
        """Issue ``count`` distinct uniformly random 64-bit IDs."""
        out: List[TagId] = []
        while len(out) < count:
            need = count - len(out)
            words = self._rng.integers(0, 1 << 63, size=need, dtype=np.uint64)
            for w in words.tolist():
                if w not in self._issued:
                    self._issued.add(w)
                    out.append(TagId(int(w)))
                if len(out) == count:
                    break
        return out

    def __iter__(self) -> Iterator[TagId]:
        while True:
            yield self.sequential(1)[0]


def random_tag_ids(count: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Fast path: ``count`` distinct random 64-bit IDs as a ``uint64`` array."""
    gen = rng if rng is not None else np.random.default_rng()
    ids = gen.integers(0, 1 << 63, size=count, dtype=np.uint64)
    # Collisions among 63-bit draws are astronomically unlikely but we
    # guarantee uniqueness anyway: protocols assume distinct IDs.
    while len(np.unique(ids)) != count:
        ids = gen.integers(0, 1 << 63, size=count, dtype=np.uint64)
    return ids


def sequential_tag_ids(count: int, start: int = 0) -> np.ndarray:
    """Fast path: ``count`` consecutive IDs as a ``uint64`` array."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return np.arange(start, start + count, dtype=np.uint64)
