"""Occupancy bitstrings — the only payload TRP/UTRP readers return.

A bitstring ``bs`` has one entry per frame slot; ``bs[sn] == 1`` iff at
least one tag replied in slot ``sn`` (Sec. 4.1). Internally it is a
numpy ``uint8`` array; these helpers keep construction, comparison and
display in one place.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

__all__ = [
    "empty_bitstring",
    "from_slots",
    "bitstrings_equal",
    "differing_slots",
    "bitwise_or",
    "format_bitstring",
]


def empty_bitstring(frame_size: int) -> np.ndarray:
    """An all-zero bitstring of length ``f`` (Alg. 3 line 1).

    Raises:
        ValueError: if ``frame_size`` is not positive.
    """
    if frame_size <= 0:
        raise ValueError(f"frame_size must be positive, got {frame_size}")
    return np.zeros(frame_size, dtype=np.uint8)


def from_slots(frame_size: int, occupied_slots: Iterable[int]) -> np.ndarray:
    """Build a bitstring from the set of occupied slot numbers.

    Raises:
        ValueError: if any slot is outside ``[0, frame_size)``.
    """
    bs = empty_bitstring(frame_size)
    slots = np.fromiter((int(s) for s in occupied_slots), dtype=np.int64)
    if slots.size:
        if slots.min() < 0 or slots.max() >= frame_size:
            raise ValueError("occupied slot outside frame")
        bs[slots] = 1
    return bs


def bitstrings_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact comparison — the server's verification predicate."""
    return a.shape == b.shape and bool(np.array_equal(a, b))


def differing_slots(a: np.ndarray, b: np.ndarray) -> List[int]:
    """Slot indices where two equal-length bitstrings disagree.

    Raises:
        ValueError: if lengths differ (frames of different sizes are
            never comparable slot-by-slot).
    """
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    return np.nonzero(a != b)[0].tolist()


def bitwise_or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``bs_s1 OR bs_s2`` — the collusion merge of Alg. 4 line 3.

    Raises:
        ValueError: if lengths differ.
    """
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    return np.bitwise_or(a, b)


def format_bitstring(bs: np.ndarray, group: int = 8) -> str:
    """Human-readable rendering, grouped for log output."""
    text = "".join(str(int(b)) for b in bs)
    return " ".join(text[i : i + group] for i in range(0, len(text), group))
