"""Reader-side scan procedures.

A reader is the untrusted middle box between server and tags: it can
broadcast seeds, poll slots, and observe empty/occupied outcomes — never
tag IDs. :class:`TrustedReader` implements the honest behaviour of both
protocols:

* :meth:`TrustedReader.scan_trp` — Alg. 3: one seed, walk the frame,
  record occupancy.
* :meth:`TrustedReader.scan_utrp` — Alg. 6: walk the frame, and after
  every occupied slot broadcast the next server-issued seed with the
  shrunken frame size ``f' = f - sn``.

Dishonest readers (replay, collusion) live in :mod:`repro.adversary`
and are built from the same channel primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .bitstring import empty_bitstring
from .channel import SlottedChannel

__all__ = ["ScanResult", "TrustedReader"]


@dataclass
class ScanResult:
    """Everything a reader hands back to the server after a scan.

    Attributes:
        bitstring: slot-occupancy vector of length ``f``.
        slots_used: total slots polled (equals ``f`` for TRP/UTRP —
            both walk the frame exactly once, Sec. 4.2).
        seeds_used: how many ``(f, r)`` broadcasts were made (1 for
            TRP; 1 + number of occupied slots for UTRP).
    """

    bitstring: np.ndarray
    slots_used: int
    seeds_used: int


class TrustedReader:
    """An honest reader executing the server's instructions verbatim."""

    def __init__(self, name: str = "reader"):
        self.name = name

    def scan_trp(self, channel: SlottedChannel, frame_size: int, seed: int) -> ScanResult:
        """Run one TRP scan (Alg. 1 + Alg. 3).

        Broadcasts ``(f, r)`` once, then polls slots ``0..f-1`` in order,
        setting ``bs[sn] = 1`` whenever at least one tag replies.
        """
        channel.power_cycle()
        channel.broadcast_seed(frame_size, seed)
        bs = empty_bitstring(frame_size)
        for sn in range(frame_size):
            if channel.poll_slot(sn).outcome.occupied:
                bs[sn] = 1
        return ScanResult(bitstring=bs, slots_used=frame_size, seeds_used=1)

    def scan_utrp(
        self, channel: SlottedChannel, frame_size: int, seeds: Sequence[int]
    ) -> ScanResult:
        """Run one UTRP scan (Alg. 6).

        The server supplies ``f`` seeds ``r_1..r_f``; the reader uses
        them strictly in order, re-seeding the remaining tags with frame
        size ``f' = f - sn`` after every occupied slot ``sn``.

        Slot bookkeeping: the reader walks *global* slots ``0..f-1``. At
        any moment the current seed governs a sub-frame of size ``f'``
        whose local slot 0 aligns with the next global slot — Alg. 6
        line 4's broadcast of ``sn - f + f'`` is exactly this global to
        local conversion.

        Raises:
            ValueError: if fewer than ``frame_size`` seeds are supplied.
        """
        if len(seeds) < frame_size:
            raise ValueError(
                f"UTRP needs {frame_size} seeds, got {len(seeds)}"
            )
        channel.power_cycle()
        seed_iter = iter(seeds)
        channel.broadcast_seed(frame_size, next(seed_iter))
        seeds_used = 1
        bs = empty_bitstring(frame_size)
        sub_frame = frame_size  # f' in the paper
        for sn in range(frame_size):
            local_slot = sn - (frame_size - sub_frame)
            if channel.poll_slot(local_slot).outcome.occupied:
                bs[sn] = 1
                sub_frame = frame_size - (sn + 1)
                if sub_frame > 0:
                    channel.broadcast_seed(sub_frame, next(seed_iter))
                    seeds_used += 1
        return ScanResult(bitstring=bs, slots_used=frame_size, seeds_used=seeds_used)
