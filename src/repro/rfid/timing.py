"""Air-interface timing model.

The paper measures efficiency in *slots* and assumes "the duration of
each slot is equally long" (Sec. 6) — that is what Figs. 4 and 6 plot.
It also notes that collect-all's *actual* performance is worse because a
tag must return its full ID rather than TRP's short random burst. This
module makes that remark quantitative: it converts
:class:`~repro.rfid.channel.ChannelStats` into microseconds under an
EPC C1G2-flavoured link budget, which the wall-clock ablation bench
(Abl. A in DESIGN.md) uses.

The constants are representative Gen2 values (40 kbps tag uplink, 26 us
tari-ish reader symbols), not a certification-grade model; every figure
the paper reports remains slot-denominated and independent of them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkTiming", "GEN2_TYPICAL", "UNIT_SLOTS"]


@dataclass(frozen=True)
class LinkTiming:
    """Durations (microseconds) of the protocol's on-air primitives.

    Attributes:
        empty_slot_us: cost of polling a slot nobody answers.
        reply_slot_us: fixed slot overhead when at least one tag answers
            (preamble, settling), excluding the payload itself.
        bit_us: per-payload-bit transmission time on the tag uplink.
        seed_broadcast_us: reader broadcasting one ``(f, r)`` pair.
        id_bits: length of a full tag ID (EPC-96).
    """

    empty_slot_us: float = 100.0
    reply_slot_us: float = 150.0
    bit_us: float = 25.0
    seed_broadcast_us: float = 800.0
    id_bits: int = 96

    def session_us(self, stats) -> float:
        """Total air time for a session's :class:`ChannelStats`."""
        occupied = stats.singleton_slots + stats.collision_slots
        payload_us = stats.reply_payload_bits * self.bit_us
        id_us = stats.id_transmissions * self.id_bits * self.bit_us
        return (
            stats.empty_slots * self.empty_slot_us
            + occupied * self.reply_slot_us
            + payload_us
            + id_us
            + stats.seed_broadcasts * self.seed_broadcast_us
        )

    def slots_equivalent(self, stats) -> float:
        """Air time expressed in equivalent empty-slot units."""
        return self.session_us(stats) / self.empty_slot_us


#: A representative EPC C1G2 parameterisation.
GEN2_TYPICAL = LinkTiming()

#: The paper's own accounting: every slot costs 1, nothing else costs
#: anything. Figs. 4 and 6 are measured under this model.
UNIT_SLOTS = LinkTiming(
    empty_slot_us=1.0,
    reply_slot_us=1.0,
    bit_us=0.0,
    seed_broadcast_us=0.0,
    id_bits=0,
)
