"""repro — missing-RFID-tag monitoring, reproduced from ICDCS 2008.

A from-scratch implementation of Tan, Sheng & Li, *How to Monitor for
Missing RFID Tags* (ICDCS 2008): the TRP and UTRP monitoring protocols,
the framed-slotted-ALOHA substrate and *collect all* baseline they are
evaluated against, the paper's adversary models (theft, replay,
colluding readers), and a Monte Carlo harness that regenerates every
figure in the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import MonitorRequirement, MonitoringServer
    from repro.rfid import TagPopulation, SlottedChannel

    rng = np.random.default_rng(0)
    req = MonitorRequirement(population=1000, tolerance=10, confidence=0.95)
    tags = TagPopulation.create(req.population, uses_counter=True, rng=rng)
    server = MonitoringServer(req, rng=rng, counter_tags=True)
    server.register(tags.ids.tolist())

    report = server.check_trp(SlottedChannel(tags.tags))
    assert report.intact

See the package docs: :mod:`repro.core` (protocols + math),
:mod:`repro.rfid` (tags/readers/channel), :mod:`repro.aloha`
(anti-collision + baseline), :mod:`repro.server` (verifier side),
:mod:`repro.adversary` (attacks), :mod:`repro.simulation` (Monte
Carlo), :mod:`repro.experiments` (figure regeneration).
"""

from .core import (
    Alert,
    MonitorRequirement,
    MonitoringServer,
    Verdict,
    VerificationResult,
    detection_probability,
    optimal_trp_frame_size,
    optimal_utrp_frame_size,
    run_trp_round,
    run_utrp_round,
    utrp_detection_probability,
)

__version__ = "1.0.0"

__all__ = [
    "Alert",
    "MonitorRequirement",
    "MonitoringServer",
    "Verdict",
    "VerificationResult",
    "detection_probability",
    "optimal_trp_frame_size",
    "optimal_utrp_frame_size",
    "run_trp_round",
    "run_utrp_round",
    "utrp_detection_probability",
    "__version__",
]
