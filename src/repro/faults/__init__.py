"""repro.faults — deterministic fault injection for monitoring fleets.

Three layers, data-driven end to end:

* :mod:`repro.faults.models` — the physics: a Gilbert–Elliott bursty
  channel and its protocol-level :class:`BurstLossChannel` wrapper;
* :mod:`repro.faults.plan` — the policy: declarative, JSON-serialisable
  :class:`FaultPlan` documents scoping failure modes to groups/rounds;
* :mod:`repro.faults.inject` — the mechanism: a :class:`FaultInjector`
  turning plan + coordinates into concrete :class:`RoundFaults`, with
  every draw derived from ``(master_seed, group, tick, attempt)`` so
  campaigns replay byte-for-byte at any ``--jobs``.

The graceful-degradation counterparts (partial-frame salvage, k-of-r
alarm confirmation, counter resync) live with the verification and
protocol code in :mod:`repro.core`; this package only breaks things.
"""

from .inject import (
    DISK_FAULT_DIMENSION,
    FAULT_DIMENSION,
    DiskFaultInjector,
    FaultInjector,
    RoundFaults,
)
from .models import (
    DISK_FAULT_KINDS,
    BurstLossChannel,
    DiskFaultModel,
    GilbertElliott,
)
from .plan import (
    CLUSTER_FAULT_KINDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    example_plan,
)

__all__ = [
    "CLUSTER_FAULT_KINDS",
    "DISK_FAULT_DIMENSION",
    "DISK_FAULT_KINDS",
    "FAULT_DIMENSION",
    "FAULT_KINDS",
    "BurstLossChannel",
    "DiskFaultInjector",
    "DiskFaultModel",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GilbertElliott",
    "RoundFaults",
    "example_plan",
]
