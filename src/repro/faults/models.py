"""Correlated failure models for the air interface.

The benign losses :class:`~repro.rfid.channel.SlottedChannel` already
models (``miss_rate``) are i.i.d. — each reply flips its own coin. Real
RFID channels fail in *bursts*: a forklift drives through the field, a
motor brushes start arcing, and every reply for a stretch of slots is
gone at once. Correlation matters because the monitoring math does not
see it: Theorem 1's false-alarm behaviour under i.i.d. loss and under
bursty loss at the *same marginal rate* differ sharply, which is
exactly what the ``chaos`` experiment measures.

The canonical correlated model is the Gilbert–Elliott two-state Markov
channel: a GOOD state with (near-)zero loss and a BAD state with heavy
loss, with geometric sojourns in each. :class:`GilbertElliott` holds
the parameters and the closed-form marginals;
:class:`BurstLossChannel` wires it into the protocol-level channel so
every existing reader/server path can run over a bursty medium
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..rfid.channel import SlotObservation, SlotOutcome, SlottedChannel
from ..rfid.tag import Tag

__all__ = [
    "DISK_FAULT_KINDS",
    "DiskFaultModel",
    "GilbertElliott",
    "BurstLossChannel",
]

#: Snapshot-write failure modes the disk-fault injector can inflict.
#:
#: ===============  ====================================================
#: ``torn-write``   The temp file is truncated mid-document — the
#:                  classic torn write a crash between ``write`` and
#:                  ``fsync`` leaves behind. The writer's read-back
#:                  verification catches it before the rename.
#: ``short-write``  A few trailing bytes never hit the platter; also
#:                  caught at read-back, before the rename.
#: ``enospc``       ``OSError(ENOSPC)`` before any byte lands; the old
#:                  snapshot survives untouched.
#: ``fsync-fail``   The data is written but the flush raises
#:                  ``OSError(EIO)``; the temp file is discarded and
#:                  the old snapshot survives.
#: ===============  ====================================================
DISK_FAULT_KINDS = ("torn-write", "short-write", "enospc", "fsync-fail")


@dataclass(frozen=True)
class DiskFaultModel:
    """How a snapshot write fails when a disk-fault spec fires.

    The model is the *physics* half of disk-fault injection (the
    policy half — which write, which group — lives in the plan): it
    picks a failure mode from ``kinds`` and decides how many bytes a
    torn or short write leaves behind. All choices are pure functions
    of the caller-supplied generator, so a chaos schedule replays
    byte-for-byte.
    """

    kinds: Tuple[str, ...] = DISK_FAULT_KINDS

    def __post_init__(self) -> None:
        kinds = tuple(self.kinds)
        if not kinds:
            raise ValueError("DiskFaultModel needs at least one kind")
        unknown = set(kinds) - set(DISK_FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown disk-fault kinds: {', '.join(sorted(unknown))}"
            )
        object.__setattr__(self, "kinds", kinds)

    def draw(self, rng: np.random.Generator) -> str:
        """Pick a failure mode uniformly from ``kinds``."""
        return self.kinds[int(rng.integers(0, len(self.kinds)))]

    @staticmethod
    def torn_prefix(num_bytes: int) -> int:
        """Bytes a torn write leaves: the document cut mid-JSON."""
        if num_bytes < 1:
            raise ValueError(f"num_bytes must be >= 1, got {num_bytes}")
        return max(1, num_bytes // 2)

    @staticmethod
    def short_prefix(num_bytes: int) -> int:
        """Bytes a short write leaves: everything but the tail."""
        if num_bytes < 1:
            raise ValueError(f"num_bytes must be >= 1, got {num_bytes}")
        return max(1, num_bytes - 16)


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state Markov burst-loss channel (Gilbert 1960, Elliott 1963).

    Attributes:
        p_good_to_bad: per-slot probability of entering the BAD state.
        p_bad_to_good: per-slot probability of leaving it (mean burst
            length is ``1 / p_bad_to_good`` slots).
        loss_good: per-reply erasure probability while GOOD.
        loss_bad: per-reply erasure probability while BAD.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_good_to_bad", "p_bad_to_good"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be within (0, 1], got {value}")
        for name in ("loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")

    @property
    def stationary_bad(self) -> float:
        """Long-run fraction of slots spent in the BAD state."""
        return self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)

    @property
    def marginal_loss(self) -> float:
        """Long-run per-reply erasure probability (state-averaged).

        This is the rate an i.i.d. channel would need to lose the same
        *number* of replies — the quantity held fixed when sweeping
        burstiness so the comparison isolates correlation.
        """
        pi_bad = self.stationary_bad
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    @property
    def mean_burst_length(self) -> float:
        """Expected BAD-sojourn length in slots."""
        return 1.0 / self.p_bad_to_good

    @classmethod
    def from_burst(
        cls,
        marginal_loss: float,
        burst_length: float,
        loss_bad: float = 1.0,
    ) -> "GilbertElliott":
        """The GE channel with a given marginal loss and burst length.

        Holding ``marginal_loss`` fixed while sweeping ``burst_length``
        is the chaos experiment's x-axis: same number of lost replies,
        increasingly clumped. With ``loss_good = 0`` the stationary BAD
        probability must be ``marginal_loss / loss_bad``, which pins
        ``p_good_to_bad`` once ``p_bad_to_good = 1 / burst_length``.

        Raises:
            ValueError: when the marginal is unreachable (exceeds
                ``loss_bad``) or the burst length is shorter than the
                marginal allows.
        """
        if not 0.0 < marginal_loss < 1.0:
            raise ValueError(
                f"marginal_loss must be within (0, 1), got {marginal_loss}"
            )
        if burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1, got {burst_length}")
        if marginal_loss >= loss_bad:
            raise ValueError(
                f"marginal_loss {marginal_loss} unreachable with "
                f"loss_bad {loss_bad}"
            )
        p_bg = 1.0 / burst_length
        pi_bad = marginal_loss / loss_bad
        p_gb = p_bg * pi_bad / (1.0 - pi_bad)
        if p_gb > 1.0:
            raise ValueError(
                f"burst_length {burst_length} too short for marginal "
                f"{marginal_loss}: implied p_good_to_bad {p_gb:.3f} > 1"
            )
        return cls(p_good_to_bad=p_gb, p_bad_to_good=p_bg, loss_bad=loss_bad)

    def state_sequence(
        self, num_slots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Boolean BAD-state indicator for ``num_slots`` slots.

        Generated sojourn-by-sojourn (geometric run lengths) rather
        than slot-by-slot, so long frames cost O(transitions) draws.
        The initial state is drawn from the stationary distribution —
        a round starts at a random point of the interference process.

        Raises:
            ValueError: if ``num_slots`` is negative.
        """
        if num_slots < 0:
            raise ValueError(f"num_slots must be >= 0, got {num_slots}")
        states = np.empty(num_slots, dtype=bool)
        bad = bool(rng.random() < self.stationary_bad)
        position = 0
        while position < num_slots:
            p_leave = self.p_bad_to_good if bad else self.p_good_to_bad
            run = int(rng.geometric(p_leave))
            run = min(run, num_slots - position)
            states[position : position + run] = bad
            position += run
            bad = not bad
        return states

    def loss_mask(self, num_slots: int, rng: np.random.Generator) -> np.ndarray:
        """Per-slot erasure mask: True where a reply in that slot is lost.

        Combines the hidden state sequence with the per-state loss
        probabilities. All replies sharing a slot share its fate — the
        interference is on the medium, not per tag.
        """
        bad = self.state_sequence(num_slots, rng)
        p = np.where(bad, self.loss_bad, self.loss_good)
        return rng.random(num_slots) < p


class BurstLossChannel(SlottedChannel):
    """A protocol-level channel with Gilbert–Elliott correlated loss.

    Two coupled failure axes, both driven by one explicit generator so
    runs replay bit-for-bit:

    * **reply erasure** — each polled slot advances the hidden GE state
      once; while BAD, every reply in the slot is erased with
      ``loss_bad`` (GOOD: ``loss_good``). Erasures land in
      ``stats.replies_lost`` like any other lost burst.
    * **seed-broadcast loss** — with ``seed_loss_rate`` per tag per
      broadcast, a tag misses the ``(f, r)`` downlink entirely. The tag
      keeps its previous session state and — crucially for UTRP — does
      **not** tick its counter, which is the desynchronisation the
      bounded resync handshake exists to repair. Missed deliveries are
      counted in :attr:`seed_losses`.
    """

    def __init__(
        self,
        tags: Sequence[Tag],
        model: GilbertElliott,
        rng: np.random.Generator,
        seed_loss_rate: float = 0.0,
        miss_rate: float = 0.0,
    ):
        if rng is None:
            raise ValueError("a bursty channel needs an rng")
        if not 0.0 <= seed_loss_rate <= 1.0:
            raise ValueError(
                f"seed_loss_rate must be within [0, 1], got {seed_loss_rate}"
            )
        super().__init__(tags, miss_rate=miss_rate, rng=rng)
        self.model = model
        self._seed_loss_rate = seed_loss_rate
        self._bad = bool(rng.random() < model.stationary_bad)
        self.seed_losses = 0

    def _advance_state(self) -> float:
        """One slot tick of the hidden chain; returns this slot's loss prob."""
        if self._bad:
            if self._rng.random() < self.model.p_bad_to_good:
                self._bad = False
        else:
            if self._rng.random() < self.model.p_good_to_bad:
                self._bad = True
        return self.model.loss_bad if self._bad else self.model.loss_good

    def broadcast_seed(self, frame_size: int, seed: int) -> None:
        """Deliver the downlink, losing it per tag at ``seed_loss_rate``."""
        if self._seed_loss_rate <= 0.0:
            super().broadcast_seed(frame_size, seed)
            return
        self.stats.seed_broadcasts += 1
        for tag in self._tags:
            if self._rng.random() < self._seed_loss_rate:
                self.seed_losses += 1
                continue
            tag.receive_seed(frame_size, seed)

    def poll_slot(self, slot: int, ids_on_air: bool = False):
        loss_p = self._advance_state()
        if loss_p <= 0.0:
            return super().poll_slot(slot, ids_on_air=ids_on_air)
        # Collect replies ourselves so the erasure applies on top of
        # whatever benign miss_rate the base class would also charge.
        if slot < 0:
            raise ValueError(f"slot must be non-negative, got {slot}")
        saved_tags = self._tags
        replies = [r for r in (tag.poll(slot) for tag in saved_tags) if r is not None]
        kept = [r for r in replies if self._rng.random() >= loss_p]
        self.stats.replies_lost += len(replies) - len(kept)
        # Hand the survivors to the base class via a transient shim: the
        # base poll re-polls tags, and a polled tag has already gone
        # silent, so we inline the resolution instead.
        self.stats.slots_polled += 1
        if self._miss_rate > 0.0 and kept:
            survivors = [r for r in kept if self._rng.random() >= self._miss_rate]
            self.stats.replies_lost += len(kept) - len(survivors)
            kept = survivors
        if ids_on_air:
            self.stats.id_transmissions += len(kept)
        if not kept:
            self.stats.empty_slots += 1
            return SlotObservation(SlotOutcome.EMPTY, None, None, [])
        if len(kept) == 1:
            self.stats.singleton_slots += 1
            decoded = kept[0].tag_id if ids_on_air else None
            if not ids_on_air:
                self.stats.reply_payload_bits += 16
            return SlotObservation(SlotOutcome.SINGLE, kept[0].bits, decoded, kept)
        self.stats.collision_slots += 1
        if ids_on_air:
            colliders = {r.tag_id for r in kept}
            for tag in saved_tags:
                if tag.tag_id in colliders:
                    tag.mark_collided()
        return SlotObservation(SlotOutcome.COLLISION, None, None, kept)
