"""Declarative fault plans: *what* to break, *where*, and *when*.

A :class:`FaultPlan` is data, not code — a JSON document an operator
can version alongside a fleet scenario and replay byte-for-byte. Each
:class:`FaultSpec` names one failure mode, scopes it to groups and
rounds, and sets its intensity; the
:class:`~repro.faults.inject.FaultInjector` turns the plan into
concrete per-round fault draws with seeds derived purely from
``(master_seed, group, tick, attempt)`` coordinates, so a plan injects
the *same* faults whether the campaign runs on 1 worker or 8.

Fault kinds:

===============  =====================================================
``burst-loss``   Gilbert–Elliott reply erasure over the frame.
                 ``intensity`` = marginal loss rate, ``burst_length``
                 = mean BAD sojourn in slots.
``seed-loss``    Each tag misses the round's seed broadcast with
                 probability ``intensity`` (UTRP: counter desync).
``reader-crash`` The reader dies mid-frame having polled an
                 ``intensity`` fraction of the slots; the server sees
                 a partial bitstring.
``tag-fade``     An ``intensity`` fraction of present tags browns out
                 at a uniform slot and stays silent from there on.
``outage``       The whole session is lost before the seed broadcast
                 (the retry path exercises, nothing is polled).
===============  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .models import DISK_FAULT_KINDS

__all__ = [
    "FAULT_KINDS",
    "CLUSTER_FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "example_plan",
]

#: Air-interface fault kinds — consumed per round by the
#: :class:`~repro.faults.inject.FaultInjector`.
FAULT_KINDS = ("burst-loss", "seed-loss", "reader-crash", "tag-fade", "outage")

#: Cluster-infrastructure fault kinds — consumed by the shard chaos
#: drill, never by the air injector (so adding them to a plan cannot
#: perturb the air-side draw schedule):
#:
#: ================== ==================================================
#: ``worker-kill``    SIGKILL a worker once ``at_tick`` cluster-wide
#:                    verdicts have completed. ``workers`` pins the
#:                    victim; empty scope = the busiest live worker.
#: ``disk-fault``     Fail a group's snapshot write; scoping reuses
#:                    ``groups`` and ``at_tick`` (= write index), with
#:                    ``mode`` pinning a :data:`DISK_FAULT_KINDS` entry
#:                    (``None`` = seeded uniform draw).
#: ``upstream-stall`` A worker stops accepting *new* sessions for
#:                    ``duration_s`` once ``at_tick`` verdicts have
#:                    completed — the gateway sees connect-then-EOF and
#:                    its circuit breaker takes over. In-flight rounds
#:                    are untouched, which is what keeps the verdict
#:                    stream bit-identical.
#: ================== ==================================================
CLUSTER_FAULT_KINDS = ("worker-kill", "disk-fault", "upstream-stall")

#: Kinds that carry no air-interface intensity.
_INTENSITY_FREE = ("outage",) + CLUSTER_FAULT_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scoped failure mode inside a plan.

    Attributes:
        fault: one of :data:`FAULT_KINDS`.
        intensity: the fault's magnitude (meaning per kind — see the
            module table). Unused for ``outage``.
        groups: group names the spec applies to; ``None`` = every group.
        at_tick: scripted trigger — apply exactly at this round index.
            ``None`` makes the spec stochastic, firing each round with
            ``probability``.
        probability: per-round firing probability for stochastic specs
            (also gates a scripted spec, default: always fires).
        burst_length: mean burst length in slots (``burst-loss`` only).
        workers: worker ids a cluster-kind spec targets (``worker-kill``
            / ``upstream-stall``); ``None`` lets the chaos scheduler
            pick the busiest live worker at fire time.
        duration_s: stall length in seconds (``upstream-stall`` only).
        mode: pinned :data:`~repro.faults.models.DISK_FAULT_KINDS`
            entry (``disk-fault`` only); ``None`` = seeded draw.
    """

    fault: str
    intensity: float = 0.0
    groups: Optional[Sequence[str]] = None
    at_tick: Optional[int] = None
    probability: float = 1.0
    burst_length: float = 1.0
    workers: Optional[Sequence[str]] = None
    duration_s: float = 0.0
    mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS + CLUSTER_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.fault!r}; expected one of "
                f"{', '.join(FAULT_KINDS + CLUSTER_FAULT_KINDS)}"
            )
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(
                f"intensity must be within [0, 1], got {self.intensity}"
            )
        if self.fault not in _INTENSITY_FREE and self.intensity == 0.0:
            raise ValueError(f"{self.fault} needs a positive intensity")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got {self.probability}"
            )
        if self.at_tick is not None and self.at_tick < 0:
            raise ValueError(f"at_tick must be >= 0, got {self.at_tick}")
        if self.burst_length < 1.0:
            raise ValueError(
                f"burst_length must be >= 1, got {self.burst_length}"
            )
        if self.workers is not None:
            if self.fault not in ("worker-kill", "upstream-stall"):
                raise ValueError(
                    f"workers scope only applies to worker-kill / "
                    f"upstream-stall specs, not {self.fault!r}"
                )
            object.__setattr__(self, "workers", tuple(self.workers))
        if self.fault in ("worker-kill", "upstream-stall"):
            if self.at_tick is None:
                raise ValueError(
                    f"{self.fault} is scripted: it needs an at_tick "
                    f"(cluster-wide verdict count to fire at)"
                )
        if self.fault == "upstream-stall":
            if not self.duration_s > 0.0:
                raise ValueError(
                    f"upstream-stall needs a positive duration_s, "
                    f"got {self.duration_s}"
                )
        elif self.duration_s != 0.0:
            raise ValueError(
                f"duration_s only applies to upstream-stall specs, "
                f"not {self.fault!r}"
            )
        if self.mode is not None:
            if self.fault != "disk-fault":
                raise ValueError(
                    f"mode only applies to disk-fault specs, not "
                    f"{self.fault!r}"
                )
            if self.mode not in DISK_FAULT_KINDS:
                raise ValueError(
                    f"unknown disk-fault mode {self.mode!r}; expected one "
                    f"of {', '.join(DISK_FAULT_KINDS)}"
                )
        if self.groups is not None:
            object.__setattr__(self, "groups", tuple(self.groups))

    def applies_to(self, group_name: str, tick: int) -> bool:
        """Whether this spec is in scope for ``(group, tick)``.

        Scope only — the stochastic ``probability`` draw happens in the
        injector, where it has deterministic coordinates.
        """
        if self.groups is not None and group_name not in self.groups:
            return False
        if self.at_tick is not None and tick != self.at_tick:
            return False
        return True

    def to_dict(self) -> dict:
        doc = {"fault": self.fault, "intensity": self.intensity}
        if self.groups is not None:
            doc["groups"] = list(self.groups)
        if self.at_tick is not None:
            doc["at_tick"] = self.at_tick
        if self.probability != 1.0:
            doc["probability"] = self.probability
        if self.burst_length != 1.0:
            doc["burst_length"] = self.burst_length
        if self.workers is not None:
            doc["workers"] = list(self.workers)
        if self.duration_s != 0.0:
            doc["duration_s"] = self.duration_s
        if self.mode is not None:
            doc["mode"] = self.mode
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSpec":
        """Parse one spec, rejecting unknown keys (typo'd plans should
        fail loudly, not silently not-inject).

        Raises:
            ValueError: on unknown keys or invalid field values.
        """
        known = {
            "fault",
            "intensity",
            "groups",
            "at_tick",
            "probability",
            "burst_length",
            "workers",
            "duration_s",
            "mode",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown fault-spec keys: {', '.join(sorted(unknown))}"
            )
        if "fault" not in doc:
            raise ValueError("fault spec missing the 'fault' key")
        return cls(
            fault=doc["fault"],
            intensity=float(doc.get("intensity", 0.0)),
            groups=doc.get("groups"),
            at_tick=doc.get("at_tick"),
            probability=float(doc.get("probability", 1.0)),
            burst_length=float(doc.get("burst_length", 1.0)),
            workers=doc.get("workers"),
            duration_s=float(doc.get("duration_s", 0.0)),
            mode=doc.get("mode"),
        )


@dataclass
class FaultPlan:
    """A named, serialisable collection of fault specs.

    Attributes:
        name: plan identifier (recorded in the campaign journal).
        description: operator-facing note on what the plan exercises.
        specs: the failure modes, applied independently each round.
    """

    name: str = "fault-plan"
    description: str = ""
    specs: List[FaultSpec] = field(default_factory=list)

    def specs_for(self, group_name: str, tick: int) -> List[FaultSpec]:
        """The specs in scope for one ``(group, tick)``, in plan order."""
        return [s for s in self.specs if s.applies_to(group_name, tick)]

    def to_dict(self) -> dict:
        return {
            "format": "repro-fault-plan",
            "version": 1,
            "name": self.name,
            "description": self.description,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        """Parse a plan document.

        Raises:
            ValueError: on a wrong format marker or malformed specs.
        """
        if doc.get("format") != "repro-fault-plan":
            raise ValueError("not a repro fault-plan document")
        if doc.get("version") != 1:
            raise ValueError(
                f"unsupported fault-plan version {doc.get('version')!r}"
            )
        return cls(
            name=str(doc.get("name", "fault-plan")),
            description=str(doc.get("description", "")),
            specs=[FaultSpec.from_dict(s) for s in doc.get("specs", [])],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())


def example_plan() -> FaultPlan:
    """The bundled chaos plan the CLI and CI smoke test run.

    Deliberately exercises every fault kind at least once, mixing
    scripted triggers (reproducible incident timeline) with a
    stochastic burst-loss background.
    """
    return FaultPlan(
        name="example-chaos",
        description=(
            "Background bursty reply loss on every group, a scripted "
            "outage, a mid-campaign reader crash, a seed-broadcast "
            "loss episode and a tag brown-out."
        ),
        specs=[
            FaultSpec("burst-loss", intensity=0.05, probability=0.5,
                      burst_length=8.0),
            FaultSpec("outage", at_tick=1),
            FaultSpec("reader-crash", intensity=0.6, at_tick=3),
            FaultSpec("seed-loss", intensity=0.02, at_tick=4),
            FaultSpec("tag-fade", intensity=0.05, at_tick=6),
        ],
    )
