"""Turning a declarative plan into concrete per-round fault draws.

Determinism is the whole point. Every draw the injector makes — does a
stochastic spec fire this round? which slots does the burst erase?
which tags miss the downlink? — comes from a generator seeded purely by
``(master_seed, fault dimension, group, tick, attempt)`` via
:func:`repro.simulation.rng.derive_seed`. Consequences:

* the same plan + seed injects byte-identical faults regardless of
  ``--jobs`` (no shared generator state across workers);
* fault randomness never touches the *group's* generator, so adding a
  fault plan cannot perturb the fault-free parts of a campaign — and a
  campaign with no plan is bit-identical to one that never imported
  this package;
* a retry (``attempt`` bump) re-rolls the faults, as a real retry
  re-rolls the weather.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..simulation.rng import derive_seed
from .models import DiskFaultModel, GilbertElliott
from .plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "RoundFaults",
    "FaultInjector",
    "DiskFaultInjector",
    "FAULT_DIMENSION",
    "DISK_FAULT_DIMENSION",
]

# Seed-space dimension reserved for fault draws. The fleet reserves 99
# for group generators; 7 keeps the two streams provably disjoint.
FAULT_DIMENSION = 7

# Disk faults draw from their own dimension so a plan mixing air and
# disk specs perturbs neither stream by adding the other.
DISK_FAULT_DIMENSION = 11


@dataclass
class RoundFaults:
    """The concrete faults one round must suffer.

    Attributes:
        injected: names of the specs that fired, in plan order — the
            journal records exactly this list.
        outage: the whole session is lost before the broadcast.
        loss_mask: per-slot erasure mask (burst loss); a present tag
            whose slot is masked goes unheard.
        seed_loss: per-tag mask of tags that missed this round's seed
            broadcast — silent this round, counter one behind after it.
        crash_fraction: fraction of the frame the reader polls before
            dying; ``None`` = no crash.
        fade_after: per-tag slot index from which the tag is silent
            (brown-out); entries >= ``frame_size`` mean no fade.
    """

    injected: List[str] = field(default_factory=list)
    outage: bool = False
    loss_mask: Optional[np.ndarray] = None
    seed_loss: Optional[np.ndarray] = None
    crash_fraction: Optional[float] = None
    fade_after: Optional[np.ndarray] = None

    @property
    def empty(self) -> bool:
        """True when nothing fired — the round runs the fault-free path."""
        return not self.injected

    def polled_slots(self, frame_size: int) -> int:
        """Slots the reader actually returns given any crash."""
        if self.crash_fraction is None:
            return frame_size
        return max(1, min(frame_size, int(self.crash_fraction * frame_size)))


class FaultInjector:
    """Materialises a :class:`~repro.faults.plan.FaultPlan` per round."""

    def __init__(self, plan: FaultPlan, master_seed: int):
        self.plan = plan
        self.master_seed = int(master_seed)

    def rng_for(self, group_index: int, tick: int, attempt: int) -> np.random.Generator:
        """The round's private fault generator (pure coordinates)."""
        return np.random.default_rng(
            derive_seed(
                self.master_seed, FAULT_DIMENSION, group_index, tick, attempt
            )
        )

    def faults_for(
        self,
        group_name: str,
        group_index: int,
        tick: int,
        attempt: int,
        frame_size: int,
        population: int,
    ) -> RoundFaults:
        """All faults striking one ``(group, tick, attempt)``.

        Specs are evaluated in plan order with a fixed draw schedule,
        so inserting a spec at the end of a plan never changes what the
        earlier specs do.

        Raises:
            ValueError: on a non-positive frame or population.
        """
        if frame_size < 1:
            raise ValueError(f"frame_size must be >= 1, got {frame_size}")
        if population < 0:
            raise ValueError(f"population must be >= 0, got {population}")
        faults = RoundFaults()
        # Cluster-kind specs (worker-kill, disk-fault, upstream-stall)
        # are the chaos scheduler's business — skipping them *before*
        # the gate loop keeps the air draw schedule independent of
        # their presence in the plan.
        specs = [
            s
            for s in self.plan.specs_for(group_name, tick)
            if s.fault in FAULT_KINDS
        ]
        if not specs:
            return faults
        rng = self.rng_for(group_index, tick, attempt)
        for spec in specs:
            # One gate draw per in-scope spec, unconditionally, keeps
            # the draw schedule independent of which specs fire.
            gate = rng.random()
            if gate >= spec.probability:
                continue
            self._apply(spec, faults, rng, frame_size, population)
        return faults

    @staticmethod
    def _apply(
        spec: FaultSpec,
        faults: RoundFaults,
        rng: np.random.Generator,
        frame_size: int,
        population: int,
    ) -> None:
        if spec.fault == "outage":
            faults.outage = True
        elif spec.fault == "burst-loss":
            model = GilbertElliott.from_burst(spec.intensity, spec.burst_length)
            mask = model.loss_mask(frame_size, rng)
            if faults.loss_mask is None:
                faults.loss_mask = mask
            else:
                faults.loss_mask |= mask
        elif spec.fault == "seed-loss":
            missed = rng.random(population) < spec.intensity
            if faults.seed_loss is None:
                faults.seed_loss = missed
            else:
                faults.seed_loss |= missed
        elif spec.fault == "reader-crash":
            fraction = spec.intensity
            if faults.crash_fraction is not None:
                fraction = min(fraction, faults.crash_fraction)
            faults.crash_fraction = fraction
        elif spec.fault == "tag-fade":
            fades = np.full(population, frame_size, dtype=np.int64)
            struck = rng.random(population) < spec.intensity
            fades[struck] = rng.integers(0, max(1, frame_size), size=int(struck.sum()))
            if faults.fade_after is None:
                faults.fade_after = fades
            else:
                faults.fade_after = np.minimum(faults.fade_after, fades)
        faults.injected.append(spec.fault)


def _group_coordinate(group_name: str) -> int:
    """A stable integer coordinate for a group *name*.

    Disk faults are keyed by name, not by the group's index on whatever
    worker currently hosts it — so the same plan torments the same
    snapshot file no matter how failover has shuffled placement.
    """
    digest = hashlib.blake2b(group_name.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 2


class DiskFaultInjector:
    """Materialises a plan's ``disk-fault`` specs per snapshot write.

    The sibling of :class:`FaultInjector` for the storage axis: where
    the air injector answers "what does round ``tick`` suffer?", this
    one answers "does snapshot write number ``write_index`` of group
    ``g`` fail, and how?". Draw coordinates are
    ``(master_seed, DISK_FAULT_DIMENSION, hash(group_name),
    write_index)`` — pure, so a chaos drill's disk carnage replays
    byte-for-byte, and disjoint from both the group and the air fault
    streams.
    """

    def __init__(self, plan: FaultPlan, master_seed: int):
        self.plan = plan
        self.master_seed = int(master_seed)
        self.model = DiskFaultModel()

    def rng_for(self, group_name: str, write_index: int) -> np.random.Generator:
        """The write's private fault generator (pure coordinates)."""
        return np.random.default_rng(
            derive_seed(
                self.master_seed,
                DISK_FAULT_DIMENSION,
                _group_coordinate(group_name),
                write_index,
            )
        )

    def fault_for(self, group_name: str, write_index: int) -> Optional[str]:
        """The failure mode striking one snapshot write, or ``None``.

        A spec's ``at_tick`` scopes the *write index* (the n-th
        persisted snapshot of that group), reusing
        :meth:`FaultSpec.applies_to` verbatim. As in the air injector,
        every in-scope spec consumes exactly one gate draw whether or
        not it fires; the first firing spec decides the mode
        (``spec.mode`` if pinned, else a seeded uniform draw).

        Raises:
            ValueError: on a negative write index.
        """
        if write_index < 0:
            raise ValueError(f"write_index must be >= 0, got {write_index}")
        specs = [
            s
            for s in self.plan.specs_for(group_name, write_index)
            if s.fault == "disk-fault"
        ]
        if not specs:
            return None
        rng = self.rng_for(group_name, write_index)
        mode: Optional[str] = None
        for spec in specs:
            gate = rng.random()
            if gate >= spec.probability:
                continue
            if mode is None:
                mode = spec.mode or self.model.draw(rng)
        return mode
