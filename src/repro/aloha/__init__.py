"""Framed slotted ALOHA substrate and the *collect all* baseline.

The anti-collision layer every protocol in the paper builds on
(Sec. 3, "Anti-collision"): frame hashing and slot statistics
(:mod:`.frame`), the full-inventory baseline the paper compares against
(:mod:`.framed_slotted`), and cardinality estimators from the related
probabilistic line of work (:mod:`.estimators`).
"""

from .adaptive import AdaptiveInventoryResult, simulate_adaptive_collect_all
from .estimators import EstimateResult, SingletonEstimator, ZeroEstimator
from .frame import FrameOutcome, expected_empty_fraction, hash_frame
from .framed_slotted import (
    CollectAllProtocol,
    CollectAllResult,
    simulate_collect_all_slots,
)
from .tree_splitting import TreeInventoryResult, simulate_tree_splitting

__all__ = [
    "AdaptiveInventoryResult",
    "simulate_adaptive_collect_all",
    "EstimateResult",
    "SingletonEstimator",
    "ZeroEstimator",
    "FrameOutcome",
    "expected_empty_fraction",
    "hash_frame",
    "CollectAllProtocol",
    "CollectAllResult",
    "simulate_collect_all_slots",
    "TreeInventoryResult",
    "simulate_tree_splitting",
]
