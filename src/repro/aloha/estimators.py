"""Probabilistic cardinality estimators over framed-ALOHA observations.

The paper's related-work section points at Kodialam & Nandagopal
(MobiCom 2006), who estimate how many tags are present from a single
frame's slot statistics instead of inventorying them. We implement the
two classic estimators from that line of work:

* :class:`ZeroEstimator` — inverts the expected number of *empty* slots
  (``E[N0] = f * e^(-n/f)``);
* :class:`SingletonEstimator` — inverts the expected number of
  *singleton* slots (``E[N1] = n * e^(-n/f)``, solved numerically).

They share the ALOHA substrate with TRP and serve two roles here: an
independent cross-check that the frame simulation has the right
occupancy statistics (property-tested), and the engine for the
estimator-based ablation of frame planning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from .frame import FrameOutcome

__all__ = ["EstimateResult", "ZeroEstimator", "SingletonEstimator"]


@dataclass(frozen=True)
class EstimateResult:
    """A cardinality estimate and the evidence behind it.

    Attributes:
        estimate: estimated number of tags (float; callers round).
        frame_size: ``f`` of the observed frame.
        observed: the raw slot count the estimator inverted.
    """

    estimate: float
    frame_size: int
    observed: int


class ZeroEstimator:
    """Estimate ``n`` from the count of empty slots.

    A slot stays empty with probability ``(1 - 1/f)^n ~ e^(-n/f)``, so
    ``n ~ -f * ln(N0 / f)``. Undefined when no slot is empty (the frame
    saturated); callers should re-run with a larger frame.
    """

    def estimate(self, outcome: FrameOutcome) -> EstimateResult:
        """Invert the empty-slot count of one frame.

        Raises:
            ValueError: if the frame has no empty slots (estimate
                diverges — the frame was too small for the population).
        """
        f = outcome.frame_size
        n0 = outcome.empty_slots
        if n0 == 0:
            raise ValueError(
                f"frame of {f} slots saturated (no empty slots); "
                "grow the frame and re-estimate"
            )
        est = -f * math.log(n0 / f)
        return EstimateResult(estimate=est, frame_size=f, observed=n0)


class SingletonEstimator:
    """Estimate ``n`` from the count of singleton slots.

    ``E[N1] = n (1 - 1/f)^(n-1) ~ n e^(-n/f)`` is unimodal in ``n`` with
    its peak at ``n = f``; we invert on the rising branch (``n <= f``),
    which is the regime collect-all-style planners operate in.
    """

    def estimate(self, outcome: FrameOutcome) -> EstimateResult:
        """Invert the singleton count of one frame.

        Raises:
            ValueError: if the singleton count exceeds the curve's
                maximum (no consistent ``n`` exists).
        """
        f = outcome.frame_size
        n1 = outcome.singleton_slots
        if n1 == 0:
            return EstimateResult(estimate=0.0, frame_size=f, observed=0)
        peak = f * math.exp(-1.0)
        if n1 > peak:
            raise ValueError(
                f"{n1} singletons exceeds the feasible maximum {peak:.1f} "
                f"for frame size {f}"
            )

        def curve(n: float) -> float:
            return n * math.exp(-n / f) - n1

        sol = optimize.brentq(curve, 1e-9, float(f))
        return EstimateResult(estimate=float(sol), frame_size=f, observed=n1)


def average_estimate(
    estimator, tag_ids: np.ndarray, frame_size: int, seeds, hash_frame_fn=None
) -> float:
    """Average an estimator over several independent frames.

    Convenience for ablations: repeated frames with fresh seeds shrink
    the estimator's variance as ``1/sqrt(rounds)``.
    """
    from .frame import hash_frame as default_hash_frame

    hf = hash_frame_fn if hash_frame_fn is not None else default_hash_frame
    values = []
    for seed in seeds:
        values.append(estimator.estimate(hf(tag_ids, frame_size, int(seed))).estimate)
    if not values:
        raise ValueError("at least one seed is required")
    return float(np.mean(values))
