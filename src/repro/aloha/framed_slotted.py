"""The *collect all* baseline: dynamic framed slotted ALOHA inventory.

This is the protocol the paper's Fig. 4 compares TRP against. Following
the paper's simulation setup (Sec. 6):

* the first round uses frame size ``f = n`` — Lee et al.'s result that
  the optimal frame size equals the number of unidentified tags;
* each later round uses ``f = `` number of tags still expected;
* with a tolerance of ``m`` the inventory stops once ``n - m`` distinct
  IDs have been collected;
* the reported cost is the **sum of all frame sizes used**.

Two implementations are provided. :class:`CollectAllProtocol` drives
the real channel/tag state machines (tags transmit IDs, collisions
re-arm, singletons are ACKed silent) and is what the tests and examples
exercise. :func:`simulate_collect_all_slots` is the vectorised
equivalent used by the Fig. 4 bench; both are validated against each
other in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

import numpy as np

from ..obs.profiling import NULL_PROFILER
from ..rfid.channel import SlotOutcome, SlottedChannel
from .frame import hash_frame

__all__ = ["CollectAllResult", "CollectAllProtocol", "simulate_collect_all_slots"]

#: Safety valve: the expected number of rounds is O(log n); anything past
#: this means the target count is unreachable (too many tags missing).
MAX_ROUNDS = 10_000


@dataclass
class CollectAllResult:
    """Outcome of a collect-all inventory.

    Attributes:
        collected_ids: distinct tag IDs identified, in collection order.
        total_slots: sum of all frame sizes — the paper's Fig. 4 metric.
        rounds: number of ``(f, r)`` rounds run.
        complete: whether the target count was reached before the
            round limit (False means more tags were missing than the
            inventory could tolerate).
    """

    collected_ids: List[int]
    total_slots: int
    rounds: int
    complete: bool


class CollectAllProtocol:
    """Channel-faithful dynamic framed slotted ALOHA inventory."""

    def __init__(self, expected_count: int, tolerance: int = 0):
        """Args:
            expected_count: ``n`` — how many tags the server's records say
                exist; sizes the first frame.
            tolerance: ``m`` — stop once ``n - m`` IDs are in hand.

        Raises:
            ValueError: on a negative count or tolerance, or tolerance
                exceeding the expected count.
        """
        if expected_count < 0:
            raise ValueError("expected_count must be non-negative")
        if not 0 <= tolerance <= expected_count:
            raise ValueError("tolerance must be within [0, expected_count]")
        self.expected_count = expected_count
        self.tolerance = tolerance

    @property
    def target_count(self) -> int:
        return self.expected_count - self.tolerance

    def run(self, channel: SlottedChannel, rng: np.random.Generator) -> CollectAllResult:
        """Inventory the channel's population until the target is met."""
        channel.power_cycle()
        collected: List[int] = []
        seen: Set[int] = set()
        total_slots = 0
        rounds = 0
        while len(collected) < self.target_count and rounds < MAX_ROUNDS:
            remaining = self.expected_count - len(collected)
            frame_size = max(remaining, 1)
            seed = int(rng.integers(0, 1 << 62))
            channel.broadcast_seed(frame_size, seed)
            rounds += 1
            total_slots += frame_size
            for sn in range(frame_size):
                obs = channel.poll_slot(sn, ids_on_air=True)
                if obs.outcome is SlotOutcome.SINGLE and obs.decoded_id not in seen:
                    seen.add(obs.decoded_id)
                    collected.append(obs.decoded_id)
            if channel.stats.slots_polled and not any(
                t.state.value != "silent" for t in channel.tags
            ) and len(collected) < self.target_count:
                # Every present tag has been identified yet the target is
                # unmet: the remainder is physically missing. A real
                # reader would keep polling ever-smaller empty frames; we
                # charge one more probe frame and stop.
                total_slots += max(self.expected_count - len(collected), 1)
                rounds += 1
                break
        complete = len(collected) >= self.target_count
        return CollectAllResult(collected, total_slots, rounds, complete)


def simulate_collect_all_slots(
    tag_ids: np.ndarray,
    expected_count: int,
    tolerance: int,
    rng: np.random.Generator,
    profiler=NULL_PROFILER,
) -> int:
    """Vectorised collect-all: return the total slots used.

    Semantics match :class:`CollectAllProtocol` exactly: frame sizes are
    ``expected_count`` minus IDs already collected, singletons resolve,
    collisions retry, stop at ``expected_count - tolerance`` IDs.

    Raises:
        ValueError: if the target is unreachable (more tags missing than
            the tolerance allows) — the physical protocol would never
            terminate.
    """
    ids = np.asarray(tag_ids, dtype=np.uint64)
    target = expected_count - tolerance
    if len(ids) < target:
        raise ValueError(
            f"only {len(ids)} tags present; cannot collect {target}"
        )
    outstanding = ids
    collected = 0
    total_slots = 0
    rounds = 0
    with profiler.timer("aloha.collect_all"):
        while collected < target:
            rounds += 1
            if rounds > MAX_ROUNDS:
                raise RuntimeError("collect-all failed to converge")
            frame_size = max(expected_count - collected, 1)
            seed = int(rng.integers(0, 1 << 62))
            total_slots += frame_size
            outcome = hash_frame(outstanding, frame_size, seed)
            resolved = outcome.singleton_ids
            take = min(len(resolved), target - collected)
            collected += len(resolved)
            if take < len(resolved):
                # Target hit mid-frame; later singletons were still
                # polled (the frame runs to completion), so the slot
                # cost stands.
                collected = target
            mask = ~np.isin(outstanding, resolved)
            outstanding = outstanding[mask]
    return total_slots
