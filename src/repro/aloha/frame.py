"""Frame-level combinatorics shared by the ALOHA protocols.

One *frame* is ``f`` consecutive slots into which a set of tags hashes
itself. Everything the reader learns is summarised by
:class:`FrameOutcome`: which slots were empty, singletons, or
collisions. Both the faithful channel simulation and the vectorised
fast paths reduce to this summary, so estimators and the collect-all
round logic are written once against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..rfid.hashing import slots_for_tags

__all__ = ["FrameOutcome", "hash_frame", "expected_empty_fraction"]


@dataclass(frozen=True)
class FrameOutcome:
    """Observable result of one framed-ALOHA round.

    Attributes:
        frame_size: ``f``.
        slot_counts: per-slot number of repliers (length ``f``).
        singleton_ids: IDs decodable this round (only meaningful when
            IDs were on the air), aligned with singleton slots.
    """

    frame_size: int
    slot_counts: np.ndarray
    singleton_ids: Optional[np.ndarray] = None

    @property
    def empty_slots(self) -> int:
        return int(np.count_nonzero(self.slot_counts == 0))

    @property
    def singleton_slots(self) -> int:
        return int(np.count_nonzero(self.slot_counts == 1))

    @property
    def collision_slots(self) -> int:
        return int(np.count_nonzero(self.slot_counts >= 2))

    @property
    def occupancy_bitstring(self) -> np.ndarray:
        """The TRP bitstring this frame would produce."""
        return (self.slot_counts > 0).astype(np.uint8)


def hash_frame(tag_ids: np.ndarray, frame_size: int, seed: int) -> FrameOutcome:
    """Hash a tag population into one frame and tally the slots.

    This is the vectorised equivalent of seeding every
    :class:`~repro.rfid.tag.Tag` and polling all ``f`` slots; the test
    suite asserts the two paths produce identical slot counts.

    Raises:
        ValueError: if ``frame_size`` is not positive.
    """
    if frame_size <= 0:
        raise ValueError(f"frame_size must be positive, got {frame_size}")
    ids = np.asarray(tag_ids, dtype=np.uint64)
    slots = slots_for_tags(ids, seed, frame_size)
    counts = np.bincount(slots, minlength=frame_size)
    singleton_slots = np.nonzero(counts == 1)[0]
    if singleton_slots.size:
        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        idx = np.searchsorted(sorted_slots, singleton_slots)
        singleton_ids = ids[order][idx]
    else:
        singleton_ids = ids[:0]
    return FrameOutcome(frame_size, counts, singleton_ids)


def expected_empty_fraction(tag_count: int, frame_size: int) -> float:
    """``(1 - 1/f)^k`` — probability a given slot stays empty.

    The paper approximates this as ``e^(-k/f)`` (proof of Theorem 1);
    both forms are exposed so tests can bound the approximation error.
    """
    if frame_size <= 0:
        raise ValueError(f"frame_size must be positive, got {frame_size}")
    if tag_count < 0:
        raise ValueError("tag_count must be non-negative")
    return float((1.0 - 1.0 / frame_size) ** tag_count)
