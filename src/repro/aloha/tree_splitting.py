"""Binary tree-splitting inventory — the other anti-collision family.

The paper's related work cites two lines of anti-collision research:
framed slotted ALOHA (the *collect all* baseline of Fig. 4) and
tree-based splitting (Bonuccelli et al.'s tree slotted ALOHA, the
Cha/Kim and Micic et al. hybrids). This module implements the classic
binary splitting protocol so the baseline comparison isn't limited to
one family:

* the reader opens one slot for *everybody*;
* a collision splits the colliding set in two (each tag flips a fair
  coin, i.e. draws one bit from its hash stream) and the two halves
  are resolved recursively, depth-first;
* a singleton transmits its ID; an empty split costs its slot and
  terminates.

Expected cost is ~2.9 slots/tag (vs ~e ~ 2.72 for optimally-sized
framed ALOHA), with a deterministic worst case instead of ALOHA's
heavy tail, and no need to know ``n`` in advance — the trade-offs the
ablation bench surfaces.

Both a channel-faithful protocol driver and a vectorised simulator are
provided, mirroring :mod:`.framed_slotted`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..rfid.hashing import slots_for_tags

__all__ = ["TreeInventoryResult", "simulate_tree_splitting"]

#: Guard against pathological recursion depth (identical coin streams
#: cannot occur with distinct IDs and fresh seeds per level, but the
#: guard converts a would-be hang into a diagnosable error).
MAX_DEPTH = 512


@dataclass
class TreeInventoryResult:
    """Outcome of a binary-splitting inventory.

    Attributes:
        collected_ids: every identified tag ID (the protocol always
            collects all — there is no tolerance short-circuit).
        total_slots: slots spent, the comparison metric.
        max_depth: deepest split reached (collision-resolution depth).
    """

    collected_ids: List[int]
    total_slots: int
    max_depth: int


def simulate_tree_splitting(
    tag_ids: np.ndarray, rng: np.random.Generator
) -> TreeInventoryResult:
    """Run a full binary-splitting inventory over ``tag_ids``.

    Tags draw their split decisions from the same deterministic hash
    primitive as slot selection (``h(id ⊕ r) mod 2`` with a fresh ``r``
    per tree level), so the simulation stays faithful to what a
    hash-equipped passive tag can compute.

    Raises:
        RuntimeError: if the split depth exceeds :data:`MAX_DEPTH`.
    """
    ids = np.asarray(tag_ids, dtype=np.uint64)
    collected: List[int] = []
    total_slots = 0
    max_depth = 0
    # Depth-first resolution stack of (ids_in_group, depth).
    stack = [(ids, 0)]
    level_seeds: List[int] = []
    while stack:
        group, depth = stack.pop()
        total_slots += 1
        max_depth = max(max_depth, depth)
        if depth > MAX_DEPTH:
            raise RuntimeError("tree splitting exceeded the depth guard")
        if len(group) == 0:
            continue
        if len(group) == 1:
            collected.append(int(group[0]))
            continue
        while len(level_seeds) <= depth:
            level_seeds.append(int(rng.integers(0, 1 << 62)))
        coins = slots_for_tags(group, level_seeds[depth] + depth, 2)
        left = group[coins == 0]
        right = group[coins == 1]
        if len(left) == len(group) or len(right) == len(group):
            # Every tag drew the same coin; re-seed this level so the
            # next attempt re-splits (costs the slot we already paid).
            level_seeds[depth] = int(rng.integers(0, 1 << 62))
            stack.append((group, depth))
            continue
        stack.append((right, depth + 1))
        stack.append((left, depth + 1))
    return TreeInventoryResult(
        collected_ids=collected,
        total_slots=total_slots,
        max_depth=max_depth,
    )
