"""Estimate-driven inventory: collect-all without knowing ``n``.

The Fig. 4 baseline sizes its frames from the server's records
(``f = n`` then ``f = #outstanding``). A reader without records —
Vogt's setting, and the reason the estimation line of work exists —
must *learn* the population size as it goes. This variant:

1. probes with a small frame;
2. estimates the outstanding population from the frame's slot
   statistics (:class:`~repro.aloha.estimators.ZeroEstimator`, falling
   back to doubling when the frame saturates);
3. sizes the next frame to the estimate (the Lee et al. optimum for
   what it believes is left);
4. repeats until a frame comes back all-empty.

It quantifies what the server's knowledge is worth: the adaptive
inventory pays a startup overshoot/undershoot tax over the
record-driven baseline (measured in the tests), yet stays within a
small constant factor — the estimator converges in O(1) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .estimators import ZeroEstimator
from .frame import hash_frame

__all__ = ["AdaptiveInventoryResult", "simulate_adaptive_collect_all"]

_MAX_ROUNDS = 10_000


@dataclass
class AdaptiveInventoryResult:
    """Outcome of an estimate-driven inventory.

    Attributes:
        collected_ids: every identified tag.
        total_slots: slots spent, including probe frames.
        rounds: frames run.
        estimates: the population estimate the reader acted on each
            round (diagnostics for the convergence tests).
    """

    collected_ids: List[int]
    total_slots: int
    rounds: int
    estimates: List[float]


def simulate_adaptive_collect_all(
    tag_ids: np.ndarray,
    rng: np.random.Generator,
    initial_frame: int = 16,
) -> AdaptiveInventoryResult:
    """Inventory an unknown-size population.

    Args:
        tag_ids: the tags physically present (unknown to the reader).
        rng: seed source for per-round challenges.
        initial_frame: size of the first probe frame.

    Raises:
        ValueError: if ``initial_frame`` is not positive.
        RuntimeError: if the inventory fails to converge (would
            indicate a broken estimator, not a property of the input).
    """
    if initial_frame <= 0:
        raise ValueError("initial_frame must be positive")
    outstanding = np.asarray(tag_ids, dtype=np.uint64)
    estimator = ZeroEstimator()
    collected: List[int] = []
    estimates: List[float] = []
    total_slots = 0
    rounds = 0
    frame_size = initial_frame
    while True:
        rounds += 1
        if rounds > _MAX_ROUNDS:
            raise RuntimeError("adaptive inventory failed to converge")
        seed = int(rng.integers(0, 1 << 62))
        outcome = hash_frame(outstanding, frame_size, seed)
        total_slots += frame_size
        resolved = outcome.singleton_ids
        collected.extend(int(i) for i in resolved)
        outstanding = outstanding[~np.isin(outstanding, resolved)]
        if outcome.empty_slots == frame_size:
            # An all-empty frame is the termination signal: nothing
            # (audible) is left. Correct whenever outstanding is empty;
            # tags remaining would have replied somewhere.
            break
        try:
            remaining_estimate = max(
                estimator.estimate(outcome).estimate - outcome.singleton_slots,
                1.0,
            )
        except ValueError:
            # Saturated frame: estimator is blind; double and re-probe.
            estimates.append(float("inf"))
            frame_size *= 2
            continue
        estimates.append(remaining_estimate)
        frame_size = max(int(round(remaining_estimate)), 1)
    return AdaptiveInventoryResult(
        collected_ids=collected,
        total_slots=total_slots,
        rounds=rounds,
        estimates=estimates,
    )
