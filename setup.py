"""Legacy setup shim.

Kept so environments without the ``wheel`` package (no PEP 660 editable
builds) can still do ``pip install -e . --no-use-pep517``; all real
metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
