"""Deployment planner: explore the (n, m, alpha, c) design space.

Before rolling out monitoring, an integrator wants to know what each
policy choice costs in scan time. This example sweeps the knobs the
paper's analysis exposes and prints a planning sheet:

* Eq. 2 frame size across tolerances and confidence levels;
* Eq. 3's untrusted-reader premium across collusion budgets;
* predicted detection probability if the policy is under-provisioned.

Run:  python examples/deployment_planner.py
"""

from repro.core.analysis import detection_probability, optimal_trp_frame_size
from repro.core.utrp_analysis import optimal_utrp_frame_size
from repro.experiments.report import render_table
from repro.rfid.timing import GEN2_TYPICAL

N = 1000  # items on the monitored shelf

print(f"planning sheet for n = {N} tags\n")

# --- 1. tolerance / confidence trade-off ------------------------------
rows = []
for m in (0, 5, 10, 20, 50):
    for alpha in (0.90, 0.95, 0.99):
        f = optimal_trp_frame_size(N, m, alpha)
        ms = f * GEN2_TYPICAL.empty_slot_us / 1000
        rows.append((m, alpha, f, f"~{ms:.0f} ms"))
print(render_table(
    ["tolerance m", "alpha", "TRP frame", "scan time"],
    rows,
    title="1. policy cost (trusted reader)",
))

# --- 2. the untrusted-reader premium ----------------------------------
rows = []
for c in (0, 10, 20, 50, 100):
    trp = optimal_trp_frame_size(N, 10, 0.95)
    utrp = optimal_utrp_frame_size(N, 10, 0.95, c)
    rows.append((c, trp, utrp, utrp - trp))
print()
print(render_table(
    ["collusion budget c", "TRP frame", "UTRP frame", "premium (slots)"],
    rows,
    title="2. untrusted-reader premium (m=10, alpha=0.95)",
))

# --- 3. what under-provisioning costs ---------------------------------
f_right = optimal_trp_frame_size(N, 10, 0.95)
rows = []
for shrink in (1.0, 0.8, 0.6, 0.4):
    f = max(1, int(f_right * shrink))
    rows.append((
        f"{int(shrink * 100)}%",
        f,
        detection_probability(N, 11, f),
    ))
print()
print(render_table(
    ["frame vs optimal", "frame", "P(detect m+1 missing)"],
    rows,
    title="3. detection lost to under-provisioned frames (m=10)",
))
print("\nreading: the optimal frame is the knee of the curve — smaller")
print("frames shed detection probability quickly, larger ones only add cost.")
