"""Trace walkthrough: watch the protocols on the air, event by event.

Uses :class:`repro.simulation.trace.TracingChannel` to record every
broadcast and slot poll, then walks through what TRP and UTRP actually
transmit — the fastest way to *see* why UTRP's re-seed cascade pins
colluding readers down.

Run:  python examples/protocol_trace_walkthrough.py
"""

import numpy as np

from repro.rfid import TagPopulation, TrustedReader
from repro.simulation.trace import TracingChannel, render_trace

rng = np.random.default_rng(5)
N, F = 8, 14

# ----------------------------------------------------------------- TRP
print("=" * 64)
print(f"TRP scan: {N} tags, frame of {F} slots, ONE seed")
print("=" * 64)
tags = TagPopulation.create(N, rng=rng)
channel = TracingChannel(tags.tags)
scan = TrustedReader().scan_trp(channel, F, seed=4242)
print(render_trace(channel.events))
print(f"\nbitstring: {''.join(map(str, scan.bitstring.tolist()))}")
print(f"broadcasts: {len(channel.broadcasts())} — the whole frame runs "
      "off a single (f, r); slot choices never change mid-scan.")
print("A colluding pair can therefore scan their halves separately and")
print("OR the bitstrings — nothing couples a slot to what came before.\n")

# ---------------------------------------------------------------- UTRP
print("=" * 64)
print(f"UTRP scan: {N} tags, frame of {F} slots, seed list committed")
print("=" * 64)
utags = TagPopulation.create(N, uses_counter=True, rng=rng)
uchannel = TracingChannel(utags.tags)
seeds = [int(s) for s in np.random.default_rng(9).integers(0, 1 << 62, size=F)]
uscan = TrustedReader().scan_utrp(uchannel, F, seeds)
print(render_trace(uchannel.events))
print(f"\nbitstring: {''.join(map(str, uscan.bitstring.tolist()))}")
broadcasts = uchannel.broadcasts()
print(f"broadcasts: {len(broadcasts)} — one per occupied slot "
      "(plus the opener); every reply forces a re-seed with the next")
print("committed seed and a shrunken frame:")
for b in broadcasts:
    print(f"    (f'={b.frame_size}, r={b.seed & 0xFFFF:#06x}...)")
print("\nBecause remaining tags re-hash after *every* reply, the suffix of")
print("the bitstring depends on where every earlier reply landed. Split")
print("readers must synchronise at each slot either might have heard —")
print("and the server's timer bounds how often they can afford to.")

# Counters moved too — the second line of defence:
print(f"\ntag counters after the scan: "
      f"{sorted(set(t.counter for t in utags.tags))} "
      "(every tag heard every broadcast; a re-scan would desynchronise)")
