"""Quickstart: monitor a set of RFID tags for missing items.

Walks the library's core loop in ~40 lines:

1. decide the policy — ``n`` tags, tolerate ``m`` missing, confidence
   ``alpha``;
2. manufacture tags and register their IDs with the server;
3. run trusted-reader (TRP) checks — no tag ever transmits its ID;
4. steal some tags and watch the alarm fire.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MonitorRequirement, MonitoringServer
from repro.rfid import SlottedChannel, TagPopulation

rng = np.random.default_rng(42)

# 1. Policy: 500 tagged items; up to 10 missing is tolerable noise
#    (blocked antennas, scratched tags); catch anything worse with 95%
#    confidence.
requirement = MonitorRequirement(population=500, tolerance=10, confidence=0.95)
print(f"policy: {requirement.describe()}")

# 2. Deploy: tag every item, register the IDs on the server.
items = TagPopulation.create(requirement.population, uses_counter=True, rng=rng)
server = MonitoringServer(requirement, rng=rng, counter_tags=True,
                          on_alert=lambda a: print(f"  !! ALERT: {a.describe()}"))
server.register(items.ids.tolist())
print(f"planned TRP frame size (Eq. 2): {server.trp_frame_size} slots "
      f"(vs {requirement.population} tags — no per-tag ID collection)")

# 3. Routine checks while the shelf is intact.
shelf = SlottedChannel(items.tags)
for day in range(1, 4):
    report = server.check_trp(shelf)
    print(f"day {day}: scanned {report.slots_used} slots -> "
          f"{'intact' if report.intact else 'NOT INTACT'}")

# 4. Theft beyond the tolerance: 11 items vanish overnight.
items.remove_random(requirement.critical_missing, rng)
shelf = SlottedChannel(items.tags)
report = server.check_trp(shelf)
print(f"day 4: scanned {report.slots_used} slots -> "
      f"{'intact' if report.intact else 'NOT INTACT'} "
      f"({len(report.result.mismatched_slots)} slots betrayed the theft)")

assert not report.intact or True  # detection is probabilistic (>alpha)
print(f"alerts raised: {len(server.alerts)}")
