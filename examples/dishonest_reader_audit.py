"""Dishonest-reader audit: why UTRP exists, played out end to end.

The Sec. 5 storyline: the employee running the RFID reader is the
thief. This example demonstrates the escalation the paper walks
through:

1. a replayed bitstring beats a server that reuses its challenge;
2. fresh challenges kill replay — but two colluding readers (the
   insider plus an accomplice holding the stolen tags) still forge a
   perfect TRP proof (Alg. 4);
3. UTRP's re-seeding + counters + timer force the colluders to
   synchronise per empty slot; with a realistic budget the forgery is
   caught.

Run:  python examples/dishonest_reader_audit.py
"""

import numpy as np

from repro import MonitorRequirement, MonitoringServer
from repro.adversary import ColludingUtrpPair, ReplayAttacker, attack_trp_with_collusion
from repro.rfid import SlottedChannel, TagPopulation
from repro.rfid.bitstring import bitstrings_equal
from repro.rfid.reader import ScanResult
from repro.server.verifier import expected_trp_bitstring

rng = np.random.default_rng(1337)

N, M = 300, 5
requirement = MonitorRequirement(population=N, tolerance=M, confidence=0.95)

# Acts 1-2 play out against plain TRP-grade tags; act 3 re-runs the
# theft against a UTRP deployment with counter tags.
plain_stock = TagPopulation.create(N, uses_counter=False, rng=rng)
plain_ids = plain_stock.ids.copy()
server = MonitoringServer(requirement, rng=rng, counter_tags=False)
server.register(plain_ids.tolist())
frame = server.trp_frame_size

print(f"set: {N} tags, tolerance {M}, TRP frame {frame}\n")

# ---------------------------------------------------------------- 1 --
print("[1] replay attack against a lazy server (reused challenge)")
attacker = ReplayAttacker()
attacker.record(SlottedChannel(plain_stock.tags), frame, seed=999)
plain_loot = plain_stock.remove_random(M + 1, rng)          # the theft
replayed = attacker.replay(frame, 999)
lazy_expectation = expected_trp_bitstring(plain_ids, frame, 999)
print(f"    stale recording vs reused (f, r): "
      f"{'ACCEPTED - theft invisible' if bitstrings_equal(replayed.bitstring, lazy_expectation) else 'rejected'}")

fresh_expectation = expected_trp_bitstring(plain_ids, frame, 31337)
print(f"    stale recording vs fresh  (f, r): "
      f"{'accepted' if bitstrings_equal(attacker.replay(frame, 31337).bitstring, fresh_expectation) else 'REJECTED - replay dead'}\n")

# ---------------------------------------------------------------- 2 --
print("[2] colluding readers against TRP (Alg. 4)")
forged = attack_trp_with_collusion(
    frame, 424242, SlottedChannel(plain_stock.tags), SlottedChannel(plain_loot.tags)
)
expected = expected_trp_bitstring(plain_ids, frame, 424242)
print(f"    OR-merged bitstring vs fresh challenge: "
      f"{'ACCEPTED - TRP cannot see the split' if bitstrings_equal(forged.bitstring, expected) else 'rejected'}\n")

# ---------------------------------------------------------------- 3 --
print("[3] the same plot against UTRP (counter tags, c = 20 sync budget)")
stock = TagPopulation.create(N, uses_counter=True, rng=rng)
all_ids = stock.ids.copy()
server = MonitoringServer(requirement, rng=rng, counter_tags=True)
server.register(all_ids.tolist())
loot = stock.remove_random(M + 1, rng)
caught = 0
rounds = 40
for _ in range(rounds):
    pair = ColludingUtrpPair(
        SlottedChannel(stock.tags), SlottedChannel(loot.tags), budget=20
    )

    def attack(challenge):
        result = pair.scan(challenge.frame_size, list(challenge.seeds))
        return (
            ScanResult(
                bitstring=result.bitstring,
                slots_used=challenge.frame_size,
                seeds_used=0,
            ),
            0.0,  # the forged proof arrives "instantly"
        )

    report = server.check_utrp(SlottedChannel(stock.tags), scan_fn=attack)
    caught += not report.intact
    # Make the demo's rounds independent: a caught forgery would trigger
    # a physical audit and counter re-provisioning in practice, so reset
    # both the hardware counters and the server's mirror between rounds.
    for tag in list(stock.tags) + list(loot.tags):
        tag.counter = 0
    server.database.set_counters(np.zeros(N, dtype=np.int64))

print(f"    forged UTRP proofs caught: {caught}/{rounds} rounds "
      f"(per-round detection probability > 0.95; finite-sample noise applies)")
