"""Warehouse scenario: a week of monitoring with realistic churn.

The paper's motivating deployment (Sec. 1): a retailer tags every item
and scans periodically; routine monitoring should not page a human for
every blocked antenna, only when losses exceed the threshold. This
example shows:

* how the tolerance ``m`` absorbs small, benign losses;
* the cost difference against the *collect all* inventory, in both
  slots and estimated air time;
* what the operator sees when a real theft happens.

Run:  python examples/warehouse_monitoring.py
"""

import numpy as np

from repro import MonitorRequirement, MonitoringServer
from repro.aloha import CollectAllProtocol
from repro.core.estimation import ThresholdAlarmPolicy
from repro.rfid import GEN2_TYPICAL, SlottedChannel, TagPopulation

rng = np.random.default_rng(7)

N_ITEMS = 1200
TOLERANCE = 20

requirement = MonitorRequirement(
    population=N_ITEMS, tolerance=TOLERANCE, confidence=0.95
)
stock = TagPopulation.create(N_ITEMS, uses_counter=True, rng=rng)
pages = []
# The threshold alarm policy (a library extension over the paper's
# strict rule) estimates the missing count from the mismatch count and
# pages only when the estimate exceeds the tolerance — so a couple of
# misplaced items don't wake anyone at 3am.
server = MonitoringServer(
    requirement,
    rng=rng,
    counter_tags=True,
    on_alert=pages.append,
    alarm_policy=ThresholdAlarmPolicy(tolerance=TOLERANCE),
)
server.register(stock.ids.tolist(), labels=None)

print(f"warehouse: {N_ITEMS} tagged items, tolerance {TOLERANCE}, alpha 0.95")
print(f"TRP frame size: {server.trp_frame_size} slots\n")

# --- cost comparison against a full inventory ------------------------
# Run the inventory on a *separate demo population*: a UTRP-grade tag
# ticks its counter for every reader that seeds it, so letting a
# third-party inventory reader interrogate the monitored stock would
# desynchronise the server's counter mirror (see README, "operational
# notes").
demo_stock = TagPopulation.create(N_ITEMS, uses_counter=False, rng=rng)
inventory_channel = SlottedChannel(demo_stock.tags)
inventory = CollectAllProtocol(N_ITEMS, tolerance=TOLERANCE).run(
    inventory_channel, rng
)
inv_time_ms = GEN2_TYPICAL.session_us(inventory_channel.stats) / 1000

trp_channel = SlottedChannel(stock.tags)
report = server.check_trp(trp_channel)
trp_time_ms = GEN2_TYPICAL.session_us(trp_channel.stats) / 1000

print("cost of one check:")
print(f"  collect-all inventory : {inventory.total_slots:>6} slots "
      f"(~{inv_time_ms:,.0f} ms of air time, {inventory.rounds} rounds)")
print(f"  TRP monitoring        : {report.slots_used:>6} slots "
      f"(~{trp_time_ms:,.0f} ms of air time, 1 round)")
print(f"  TRP advantage         : {inventory.total_slots / report.slots_used:.1f}x "
      f"slots, {inv_time_ms / trp_time_ms:.1f}x air time\n")

# --- a week on the shop floor ----------------------------------------
week = [
    ("Mon", 0,  "quiet day"),
    ("Tue", 3,  "three items misplaced by customers"),
    ("Wed", 0,  "quiet day"),
    ("Thu", 5,  "a pallet moved out of reader range"),
    ("Fri", 25, "THEFT: a case of goods walks out the back door"),
]

from repro.core.estimation import estimate_missing_count

lost_so_far = 0
for day, losses, note in week:
    if losses:
        stock.remove_random(losses, rng)
        lost_so_far += losses
    channel = SlottedChannel(stock.tags)
    pages_before = len(pages)
    result = server.check_trp(channel)
    mismatches = len(result.result.mismatched_slots)
    estimate = estimate_missing_count(
        mismatches, N_ITEMS, result.challenge.frame_size
    )
    paged = len(pages) > pages_before
    status = "PAGE OPERATOR" if paged else "ok (below threshold)"
    print(f"{day}: {note:<44} truly missing={lost_so_far:<3} "
          f"estimated={estimate:5.1f} -> {status}")

print(f"\npages sent to the operator: {len(pages)}")
for page in pages:
    print(f"  {page.describe()}")
print("\nMon-Thu losses (8 <= m=20) kept the estimate below the threshold,")
print("so monitoring stayed silent by design; Friday's theft tripped it.")

# --- scaling up: the whole site as a fleet ---------------------------
# One server, one zone is the paper's setting; a real site runs many
# zones with different stakes. repro.fleet turns the same protocols
# into a campaign: per-zone (n, m, alpha), priority scheduling,
# retries over flaky dock-door links, and escalation to UTRP-grade
# checks and then tag identification when a zone keeps alarming.
from repro.fleet import CampaignConfig, default_scenario, run_campaign
from repro.fleet.metrics import render_metrics_table

scenario = default_scenario(groups=4)
campaign = run_campaign(
    scenario,
    # time_scale=0: no air-time pacing in an example; jobs=2 still
    # exercises the parallel path, and the journal digest below would
    # be identical at any jobs setting.
    CampaignConfig(ticks=5, jobs=2, master_seed=7, time_scale=0.0),
)

print("\n--- site-wide fleet campaign (4 zones, 5 ticks) ---")
print(render_metrics_table(campaign.metrics))
print(f"\nfleet pages: {len(campaign.alerts)}; "
      f"escalations: {len(campaign.journal.escalations())}")
print(f"journal digest (reproducible): {campaign.journal.digest()[:16]}...")
