"""Multi-group monitoring: one store, many differently-sized sets.

The paper's fourth contribution: unlike yoking-proof schemes whose
per-tag timers bake in a fixed group size, bitstring monitoring adapts
to any group size by re-planning the frame. This example runs a store
with four groups under one operator view:

* a small jewellery case with zero tolerance, scanned by an untrusted
  contractor reader (UTRP);
* two mid-sized shelves with ordinary tolerances (TRP);
* a large stockroom with a generous tolerance (TRP).

Run:  python examples/multi_group_store.py
"""

import numpy as np

from repro.core import GroupedMonitor, MonitorRequirement
from repro.rfid import SlottedChannel, TagPopulation

rng = np.random.default_rng(11)

GROUPS = [
    # name            n     m   untrusted
    ("jewellery",     30,   0,  True),
    ("electronics",   250,  5,  False),
    ("apparel",       400,  10, False),
    ("stockroom",     1500, 30, False),
]

monitor = GroupedMonitor(
    rng=rng, on_alert=lambda a: print(f"    !! {a.describe()}")
)
populations = {}
for name, n, m, untrusted in GROUPS:
    pop = TagPopulation.create(n, uses_counter=True, rng=rng)
    populations[name] = pop
    monitor.add_group(
        name,
        MonitorRequirement(population=n, tolerance=m, confidence=0.95),
        pop.ids.tolist(),
        untrusted_reader=untrusted,
    )

print("store layout and per-group scan plans:")
for name, n, m, untrusted in GROUPS:
    server = monitor.server(name)
    frame = server.utrp_frame_size if untrusted else server.trp_frame_size
    protocol = "UTRP" if untrusted else "TRP"
    print(f"  {name:<12} n={n:<5} m={m:<3} -> {protocol} frame {frame} slots")
print(f"one full sweep costs {monitor.planned_sweep_slots()} slots\n")

def sweep(label):
    channels = {name: SlottedChannel(pop.tags) for name, pop in populations.items()}
    report = monitor.sweep(channels)
    verdict = "all intact" if report.all_intact else f"flagged: {report.flagged_groups}"
    print(f"{label}: {report.total_slots} slots -> {verdict}")

sweep("sweep 1 (everything in place)")

# A shoplifter empties part of the apparel shelf...
populations["apparel"].remove_random(25, rng)
sweep("sweep 2 (25 apparel items gone)")

# ...and an insider lifts a single ring from the zero-tolerance case.
populations["jewellery"].remove_random(1, rng)
sweep("sweep 3 (one ring gone, m=0)")

print(f"\ntotal alerts: {len(monitor.alerts)}")
