"""Forensics: after the alarm, name the missing items.

The paper's protocols raise an alarm when more than ``m`` tags are
missing. This example continues the story with the identification
extension (`repro.core.identification`): the server replays a few more
TRP rounds and uses empty expected-occupied slots to *prove* specific
tags missing — a slot the server expected to be busy that came back
silent condemns every tag that hashed into it.

Run:  python examples/missing_tag_forensics.py
"""

import numpy as np

from repro import MonitorRequirement, MonitoringServer
from repro.core.identification import (
    MissingTagIdentifier,
    rounds_to_identify,
)
from repro.rfid import SlottedChannel, TagPopulation

rng = np.random.default_rng(2025)

N, M = 400, 8
requirement = MonitorRequirement(population=N, tolerance=M, confidence=0.95)
stock = TagPopulation.create(N, rng=rng)
labels = [f"pallet-{i // 40}/case-{i % 40}" for i in range(N)]
server = MonitoringServer(requirement, rng=rng)
server.register(stock.ids.tolist(), labels=labels)
frame = server.trp_frame_size

# --- the theft ---------------------------------------------------------
stolen = stock.remove_random(M + 1, rng)
truly_missing = set(stolen.ids.tolist())
channel = SlottedChannel(stock.tags)
report = server.check_trp(channel)
print(f"routine check: {'intact' if report.intact else 'ALARM'} "
      f"({len(report.result.mismatched_slots)} suspicious slots)\n")

# --- forensics ---------------------------------------------------------
planned = rounds_to_identify(N, M + 1, frame, beta=0.99)
print(f"forensics plan: ~{planned} extra TRP rounds to name all "
      f"{M + 1} missing tags with 99% confidence\n")

identifier = MissingTagIdentifier(server.database.ids.tolist())
# The alarm round itself is evidence too:
identifier.ingest(
    report.challenge.frame_size, report.challenge.seed, report.scan.bitstring
)

round_no = 1
while identifier.confirmed_missing != truly_missing and round_no <= 3 * planned:
    extra = server.check_trp(channel)
    identifier.ingest(
        extra.challenge.frame_size, extra.challenge.seed, extra.scan.bitstring
    )
    round_no += 1
    found = len(identifier.confirmed_missing)
    print(f"after round {round_no}: {found}/{M + 1} missing tags named")

print("\nconfirmed missing items:")
for tag_id in sorted(identifier.confirmed_missing):
    print(f"  {tag_id:#018x}  {server.database.record(tag_id).label}")

assert identifier.confirmed_missing <= truly_missing, "soundness violated!"
complete = identifier.confirmed_missing == truly_missing
print(f"\nidentification {'complete' if complete else 'partial'} after "
      f"{round_no} rounds (soundness guaranteed: no present item is ever accused)")
