"""Warehouse scenario: three remote dock readers, one of them too slow.

The paper's deployment picture is networked — the server keeps the
secrets (IDs, seeds, counters, the Alg. 5 timer) and the readers near
the dock doors hold only antennas. This example runs that split for
real over loopback TCP with ``repro.serve``:

* three dock readers each monitor their own tag group over the
  ``repro.serve/v1`` wire protocol;
* docks A and B are healthy: their UTRP proofs land inside the
  challenge timer and verify intact;
* dock C's reader is degraded (a failing power supply stretches every
  scan) — its proof arrives *after* the timer, so the server takes
  Theorem 5's path: verdict ``rejected-late``, operator alarm. Nothing
  about the tags is wrong; the protocol refuses to trust a proof it
  cannot bound in time.

Run:  python examples/warehouse_remote_readers.py
"""

import asyncio

from repro.rfid import SlottedChannel
from repro.serve import MonitoringService, ReaderClient

DOCKS = ["dock-a", "dock-b", "dock-c"]
ITEMS_PER_DOCK = 150
TOLERANCE = 3
SEED = 2008

# Dock C's scans run this much over their challenge timer (simulated
# microseconds of air time added per round by the ailing reader).
DOCK_C_LAG_US = 5_000.0


async def run_dock(service: MonitoringService, dock: str, index: int):
    """One remote reader: rebuild the dock's physical tags, connect,
    run one UTRP round."""
    population = MonitoringService.build_population_for(
        ITEMS_PER_DOCK, seed=SEED + index, counter_tags=True
    )
    channel = SlottedChannel(population.tags)
    lag = DOCK_C_LAG_US if dock == "dock-c" else 0.0
    client = ReaderClient(
        "127.0.0.1", service.port, channel, extra_delay_us=lag
    )
    async with client:
        return await client.run_round(dock, "utrp")


async def main() -> None:
    service = MonitoringService()
    for index, dock in enumerate(DOCKS):
        service.create_group(
            dock,
            ITEMS_PER_DOCK,
            TOLERANCE,
            confidence=0.95,
            seed=SEED + index,
            counter_tags=True,
        )

    async with service:
        print(
            f"monitoring service up on 127.0.0.1:{service.port} "
            f"({len(DOCKS)} docks x {ITEMS_PER_DOCK} items, UTRP)\n"
        )
        outcomes = await asyncio.gather(
            *(run_dock(service, dock, i) for i, dock in enumerate(DOCKS))
        )

        for dock, outcome in zip(DOCKS, outcomes):
            status = "ALARM" if outcome.alarm else "ok"
            print(
                f"  {dock}: verdict={outcome.verdict:<13} "
                f"f={outcome.frame_size} "
                f"elapsed={outcome.elapsed_us:8.1f} us  [{status}]"
            )

        print()
        alarmed = [d for d, o in zip(DOCKS, outcomes) if o.alarm]
        for dock in alarmed:
            alert = service.groups[dock].monitor.alerts[-1]
            print(f"operator page from {dock}: {alert.describe()}")
        late = [
            d for d, o in zip(DOCKS, outcomes) if o.verdict == "rejected-late"
        ]
        print(
            f"\nUTRP timer alarms: {len(late)} of {len(DOCKS)} docks "
            f"({', '.join(late)})"
        )
        print(
            "dock-c's tags are fine; its *reader* is too slow to prove it "
            "within the paper's deadline, so the server refuses the proof."
        )


if __name__ == "__main__":
    asyncio.run(main())
